#include "common/ids.h"

#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(DenseIdTest, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.underlying(), NodeId::kInvalid);
}

TEST(DenseIdTest, ExplicitValueIsValid) {
  NodeId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.underlying(), 7U);
}

TEST(DenseIdTest, ComparisonIsByValue) {
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
  EXPECT_LT(NodeId(3), NodeId(4));
}

TEST(DenseIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<NodeId, TopicId>);
}

TEST(DenseIdTest, StreamsWithPrefix) {
  std::ostringstream os;
  os << NodeId(5) << " " << LinkId(2) << " " << TopicId(0);
  EXPECT_EQ(os.str(), "n5 l2 t0");
}

TEST(DenseIdTest, StreamsInvalidDistinctly) {
  std::ostringstream os;
  os << NodeId();
  EXPECT_EQ(os.str(), "n<invalid>");
}

TEST(DenseIdTest, HashableInUnorderedContainers) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  set.insert(NodeId(1));
  EXPECT_EQ(set.size(), 2U);
  EXPECT_TRUE(set.contains(NodeId(2)));
}

TEST(MessageIdTest, DefaultIsInvalid) {
  MessageId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(MessageId(0).valid());
}

TEST(MessageIdTest, OrderedByValue) {
  EXPECT_LT(MessageId(1), MessageId(2));
  EXPECT_EQ(MessageId(9), MessageId(9));
}

TEST(MessageIdTest, Hashable) {
  std::unordered_set<MessageId> set;
  set.insert(MessageId(10));
  set.insert(MessageId(10));
  EXPECT_EQ(set.size(), 1U);
}

}  // namespace
}  // namespace dcrd
