#include "common/timer_wheel.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

using Wheel = TimerWheel<int>;

// Drains the wheel, returning (at, k2) in pop order (tests that only need a
// tie-breaker leave k1 = 0 and use k2 like the old sequence number).
std::vector<std::pair<std::int64_t, std::uint64_t>> Drain(Wheel& wheel) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  Wheel::Entry entry;
  while (wheel.PopNext(&entry)) out.emplace_back(entry.at, entry.k2);
  return out;
}

TEST(TimerWheelTest, StartsEmptyAtTickZero) {
  Wheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.current(), 0);
  Wheel::Entry entry;
  EXPECT_FALSE(wheel.PopNext(&entry));
}

TEST(TimerWheelTest, PopsInTickThenKeyOrder) {
  Wheel wheel;
  // Shuffled ticks spanning all three levels: level 0 (< 2^11), level 1
  // (< 2^22), level 2 (< 2^33).
  const std::int64_t ticks[] = {7, 5'000'000, 3000, 1, 40'000'000'0, 2047,
                                2048, 4'194'304};
  std::uint64_t seq = 1;
  for (const std::int64_t at : ticks) wheel.Insert(at, 0, seq++, 0);

  const auto popped = Drain(wheel);
  ASSERT_EQ(popped.size(), std::size(ticks));
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, SameTickYieldsKeyOrder) {
  Wheel wheel;
  for (std::uint64_t seq = 1; seq <= 100; ++seq) {
    wheel.Insert(500, 0, seq, 0);
  }
  const auto popped = Drain(wheel);
  ASSERT_EQ(popped.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(popped[i], (std::pair<std::int64_t, std::uint64_t>{500, i + 1}));
  }
}

TEST(TimerWheelTest, SameTickOutOfOrderInsertsSortAtDetach) {
  // A cross-shard injection appends with a key smaller than entries already
  // linked in the bucket; the detach-time sort must restore (k1, k2) order.
  Wheel wheel;
  wheel.Insert(500, 7, 1, 10);
  wheel.Insert(500, 3, 2, 20);  // smaller k1, inserted later
  wheel.Insert(500, 3, 1, 30);  // same k1, smaller k2, inserted last
  Wheel::Entry entry;
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.payload, 30);
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.payload, 20);
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.payload, 10);
  EXPECT_FALSE(wheel.PopNext(&entry));
}

TEST(TimerWheelTest, CascadePreservesOrderWithinBlock) {
  Wheel wheel;
  // All in level 1's first rotation block [2048, 4096): they cascade down
  // together when the clock enters the block, and must still pop by tick.
  wheel.Insert(4000, 0, 1, 0);
  wheel.Insert(2100, 0, 2, 0);
  wheel.Insert(3000, 0, 3, 0);
  wheel.Insert(2100, 0, 4, 0);  // same tick as k2=2: keyed after it
  const auto popped = Drain(wheel);
  const std::vector<std::pair<std::int64_t, std::uint64_t>> want = {
      {2100, 2}, {2100, 4}, {3000, 3}, {4000, 1}};
  EXPECT_EQ(popped, want);
}

TEST(TimerWheelTest, RejectsTicksBeyondHorizon) {
  Wheel wheel;
  const std::int64_t horizon = std::int64_t{1} << Wheel::kHorizonBits;
  EXPECT_FALSE(wheel.Accepts(horizon));
  EXPECT_FALSE(wheel.TryInsert(horizon, 0, 1, 0));
  EXPECT_TRUE(wheel.Accepts(horizon - 1));
  EXPECT_TRUE(wheel.TryInsert(horizon - 1, 0, 1, 0));
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheelTest, RejectsTicksBehindTheClock) {
  Wheel wheel;
  wheel.Insert(100, 0, 1, 0);
  Wheel::Entry entry;
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(wheel.current(), 100);
  EXPECT_FALSE(wheel.TryInsert(99, 0, 2, 0));
  EXPECT_TRUE(wheel.TryInsert(100, 0, 2, 0));  // the current tick stays legal
}

TEST(TimerWheelTest, HorizonIsPrefixNotDistance) {
  // The horizon is "same bit prefix above kHorizonBits", not "within 2^33
  // ticks": just before a block boundary the acceptable window shrinks.
  Wheel wheel;
  const std::int64_t block = std::int64_t{1} << Wheel::kHorizonBits;
  wheel.JumpTo(block - 1);
  EXPECT_TRUE(wheel.Accepts(block - 1));
  EXPECT_FALSE(wheel.Accepts(block));  // 1 tick ahead, different prefix
}

TEST(TimerWheelTest, JumpToSkipsAheadWhileEmpty) {
  Wheel wheel;
  const std::int64_t far = (std::int64_t{7} << Wheel::kHorizonBits) + 12345;
  wheel.JumpTo(far);
  EXPECT_EQ(wheel.current(), far);
  wheel.Insert(far + 500, 0, 1, 42);
  Wheel::Entry entry;
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.at, far + 500);
  EXPECT_EQ(entry.payload, 42);
  EXPECT_EQ(wheel.current(), far + 500);
}

TEST(TimerWheelTest, SameTickReinsertDuringDrainYieldsAfterDetachedRun) {
  // The re-arm idiom: while PopNext is yielding tick T's bucket, the caller
  // re-inserts at T with a fresh (larger) key. The new entry must come out
  // after the already-detached run — exactly its key order.
  Wheel wheel;
  wheel.Insert(50, 0, 1, 1);
  wheel.Insert(50, 0, 2, 2);
  Wheel::Entry entry;
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.k2, 1u);
  wheel.Insert(50, 0, 3, 3);  // same tick, mid-drain
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.k2, 2u);
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.k2, 3u);
  EXPECT_FALSE(wheel.PopNext(&entry));
}

TEST(TimerWheelTest, PopNextBeforeStopsShortOfTheLimit) {
  Wheel wheel;
  wheel.Insert(10, 0, 1, 1);
  wheel.Insert(20, 0, 2, 2);
  wheel.Insert(30, 0, 3, 3);
  Wheel::Entry entry;
  ASSERT_TRUE(wheel.PopNextBefore(30, &entry));
  EXPECT_EQ(entry.at, 10);
  ASSERT_TRUE(wheel.PopNextBefore(30, &entry));
  EXPECT_EQ(entry.at, 20);
  // Tick 30 is at the limit: refused, clock unmoved past 20.
  EXPECT_FALSE(wheel.PopNextBefore(30, &entry));
  EXPECT_EQ(wheel.current(), 20);
  EXPECT_EQ(wheel.size(), 1u);
  // An injection below the refused tick must still be insertable and pop
  // first once the limit lifts.
  ASSERT_TRUE(wheel.TryInsert(25, 0, 4, 4));
  ASSERT_TRUE(wheel.PopNextBefore(100, &entry));
  EXPECT_EQ(entry.at, 25);
  ASSERT_TRUE(wheel.PopNextBefore(100, &entry));
  EXPECT_EQ(entry.at, 30);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, PopNextBeforeRefusesCascadePastTheLimit) {
  // The only pending entry lives in a level-1 block starting beyond the
  // limit: the cascade must not run, leaving the block intact for later
  // same-block injections.
  Wheel wheel;
  wheel.Insert(5000, 0, 1, 1);  // level-1 block [4096, 6144)
  Wheel::Entry entry;
  EXPECT_FALSE(wheel.PopNextBefore(3000, &entry));
  EXPECT_EQ(wheel.current(), 0);  // clock unmoved
  ASSERT_TRUE(wheel.TryInsert(4500, 0, 2, 2));
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.at, 4500);
  ASSERT_TRUE(wheel.PopNext(&entry));
  EXPECT_EQ(entry.at, 5000);
}

TEST(TimerWheelTest, PeekNextAtDoesNotAdvanceTheClock) {
  Wheel wheel;
  std::int64_t at = 0;
  EXPECT_FALSE(wheel.PeekNextAt(&at));
  wheel.Insert(5000, 0, 1, 1);  // level 1
  ASSERT_TRUE(wheel.PeekNextAt(&at));
  EXPECT_EQ(at, 5000);
  EXPECT_EQ(wheel.current(), 0);  // no cascade, no clock movement
  wheel.Insert(70, 0, 2, 2);  // level 0: becomes the minimum
  ASSERT_TRUE(wheel.PeekNextAt(&at));
  EXPECT_EQ(at, 70);
  // Peek mid-drain sees the detached cursor's head.
  Wheel::Entry entry;
  ASSERT_TRUE(wheel.PopNext(&entry));
  wheel.Insert(70, 0, 3, 3);
  ASSERT_TRUE(wheel.PeekNextAt(&at));
  EXPECT_EQ(at, 70);
}

TEST(TimerWheelTest, PoolRecyclesNodesAcrossGenerations) {
  // Steady-state churn far beyond one slab's 1024 nodes: the free list must
  // recycle, keeping the population bounded by the high-water mark.
  Wheel wheel;
  std::uint64_t seq = 1;
  std::int64_t at = 1;
  for (int round = 0; round < 5000; ++round) {
    wheel.Insert(at, 0, seq++, 0);
    Wheel::Entry entry;
    ASSERT_TRUE(wheel.PopNext(&entry));
    EXPECT_EQ(entry.at, at);
    ++at;
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelDeathTest, InsertOutsideHorizonAborts) {
  Wheel wheel;
  EXPECT_DEATH(
      wheel.Insert(std::int64_t{1} << Wheel::kHorizonBits, 0, 1, 0),
      "outside wheel horizon");
}

TEST(TimerWheelDeathTest, JumpToOverLiveEntriesAborts) {
  Wheel wheel;
  wheel.Insert(10, 0, 1, 0);
  EXPECT_DEATH(wheel.JumpTo(1000), "JumpTo over");
}

}  // namespace
}  // namespace dcrd
