// Delay-provenance analysis: the decomposition's exact-sum invariant under
// the full fault cocktail, the model-vs-observed auditor against a
// closed-form fixture, the model-row parser, exact histogram merging, and
// the lossy-capture warnings.
#include "obs/analysis/delay_decomposition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dcrd/dr.h"
#include "obs/analysis/model_audit.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace_export.h"
#include "sim/engine.h"

namespace dcrd {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<TraceRecord> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::size_t dropped = 0;
  std::vector<TraceRecord> records = ReadTraceJsonl(in, &dropped);
  EXPECT_EQ(dropped, 0u);
  return records;
}

// Every fault process at once: link failures, loss, gray degradation,
// upstream reroutes (m = 2 on a sparse overlay), and the adaptive RTO.
ScenarioConfig ChaosCocktailConfig() {
  ScenarioConfig config;
  config.node_count = 20;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 3;
  config.failure_probability = 0.15;
  config.loss_rate = 1e-3;
  config.gray_probability = 0.2;
  config.max_transmissions = 2;
  config.adaptive_rto = true;
  config.sim_time = SimDuration::Seconds(60);
  config.seed = 1;
  return config;
}

TEST(DelayDecompositionTest, ChaosCocktailComponentsSumExactly) {
  TempFile trace_file("analysis_chaos.jsonl");
  ScenarioConfig config = ChaosCocktailConfig();
  config.trace_out = trace_file.path;
  RunScenario(config);

  const std::vector<TraceRecord> records = LoadTrace(trace_file.path);
  ASSERT_FALSE(records.empty());

  // The cocktail must actually be in the trace, or the property is vacuous.
  bool saw_retransmit = false, saw_reroute = false, saw_gray = false,
       saw_timer = false;
  std::set<std::pair<std::uint64_t, std::uint32_t>> delivered;
  for (const TraceRecord& r : records) {
    if (r.kind == TraceEventKind::kRetransmit) saw_retransmit = true;
    if (r.kind == TraceEventKind::kReroute) saw_reroute = true;
    if (r.kind == TraceEventKind::kGrayStart) saw_gray = true;
    if (r.kind == TraceEventKind::kTimerArmed) saw_timer = true;
    if (r.kind == TraceEventKind::kDeliver) delivered.insert({r.packet, r.node});
  }
  ASSERT_TRUE(saw_retransmit);
  ASSERT_TRUE(saw_reroute);
  ASSERT_TRUE(saw_gray);
  ASSERT_TRUE(saw_timer);
  ASSERT_FALSE(delivered.empty());

  TraceAnalyzer analyzer;
  analyzer.AddAll(records);
  const DecompositionResult result = analyzer.Decompose();

  // One decomposition per first delivery of each (packet, subscriber) pair.
  EXPECT_EQ(result.deliveries.size(), delivered.size());
  EXPECT_EQ(result.skipped_no_publish, 0u);
  EXPECT_EQ(result.timer_accounting_mismatches, 0u);

  std::int64_t total_sum = 0;
  for (const DeliveryDecomposition& d : result.deliveries) {
    EXPECT_EQ(d.total_us, d.deliver_t_us - d.publish_t_us);
    // The invariant of the whole subsystem: non-negative components that
    // sum *exactly* to the end-to-end delay, for every delivery, under
    // every fault process at once.
    EXPECT_EQ(d.components.Sum(), d.total_us)
        << "packet " << d.packet << " sub " << d.subscriber;
    EXPECT_GE(d.components.propagation_us, 0);
    EXPECT_GE(d.components.queueing_us, 0);
    EXPECT_GE(d.components.retransmit_wait_us, 0);
    EXPECT_GE(d.components.reroute_detour_us, 0);
    EXPECT_GE(d.components.residual_us, 0);
    total_sum += d.total_us;
  }
  EXPECT_EQ(result.total_histogram.count(), result.deliveries.size());
  EXPECT_EQ(result.total_histogram.sum(),
            static_cast<std::uint64_t>(total_sum));

  // With retransmissions and reroutes in the trace, their components must
  // show up somewhere.
  EXPECT_GT(result.component_histograms[2].sum(), 0u);  // retransmit_wait
}

// 3-broker line with distinct link delays: the only topology where every
// Theorem-1 quantity has a pencil-and-paper value. With Pl = Pf = 0 the
// monitor's estimates are exact (alpha from the graph, gamma pinned at 1),
// so d(pub, sub) is exactly the shortest-path delay and every observed
// delivery takes exactly that long — the auditor must agree to the
// microsecond, with zero variance and zero flags.
TEST(ModelAuditTest, ThreeBrokerLineReproducesClosedFormD) {
  TempFile topo_file("analysis_line3.txt");
  {
    std::ofstream topo(topo_file.path);
    topo << "3\n0 1 10000\n1 2 20000\n";
  }
  TempFile trace_file("analysis_line3_trace.jsonl");
  TempFile model_file("analysis_line3_model.jsonl");

  ScenarioConfig config;
  config.router = RouterKind::kDcrd;
  config.topology_file = topo_file.path;
  config.failure_probability = 0.0;
  config.loss_rate = 0.0;
  config.topic_count = 3;
  config.subscriber_probability_min = 1.0;
  config.subscriber_probability_max = 1.0;
  config.sim_time = SimDuration::Seconds(30);
  config.seed = 5;
  config.trace_out = trace_file.path;
  config.delay_audit_out = model_file.path;
  const RunSummary summary = RunScenario(config);
  ASSERT_GT(summary.messages_published, 0u);

  // Closed-form d: the line's pairwise path delays, in microseconds.
  const auto closed_form = [](std::uint32_t a, std::uint32_t b) {
    static const std::int64_t prefix[3] = {0, 10000, 30000};
    return static_cast<double>(std::abs(prefix[a] - prefix[b]));
  };

  // Model side: every exported row must carry the closed-form d, r = 1,
  // and recombine to itself via Eq. 3.
  std::ifstream model_in(model_file.path);
  ASSERT_TRUE(model_in.is_open());
  ModelAuditor auditor;
  std::size_t rows = 0;
  ASSERT_TRUE(ForEachModelRow(model_in, [&](const ModelRow& row) {
    ++rows;
    ASSERT_LT(row.pub, 3u);
    ASSERT_LT(row.sub, 3u);
    EXPECT_NEAR(row.d_us, closed_form(row.pub, row.sub), 0.5) << rows;
    EXPECT_DOUBLE_EQ(row.r, 1.0);
    EXPECT_NEAR(CombineOrdered(row.list).d_us, row.d_us, 0.5);
    auditor.AddModelRow(row);
  }));
  ASSERT_GT(rows, 0u);

  // Observed side, through the same decomposition the CLI uses.
  TraceAnalyzer analyzer;
  analyzer.AddAll(LoadTrace(trace_file.path));
  const DecompositionResult result = analyzer.Decompose();
  ASSERT_FALSE(result.deliveries.empty());
  for (const DeliveryDecomposition& d : result.deliveries) {
    auditor.Observe(d.topic, d.subscriber, d.publish_t_us, d.total_us);
  }

  const AuditReport report = auditor.Finish();
  EXPECT_EQ(report.observed, result.deliveries.size());
  EXPECT_EQ(report.unmatched, 0u);
  EXPECT_EQ(report.matched, report.observed);
  EXPECT_EQ(report.recombine_failures, 0u);
  EXPECT_EQ(report.flagged_cells, 0u);
  ASSERT_GT(report.populated_cells, 0u);

  bool saw_two_hop = false;
  for (const AuditCell& cell : report.cells) {
    if (cell.n == 0) continue;
    // Deterministic wires: every delivery in a cell takes the same time.
    EXPECT_DOUBLE_EQ(cell.stddev_us, 0.0);
    EXPECT_DOUBLE_EQ(cell.mean_us, closed_form(cell.pub, cell.sub));
    // "To the microsecond": observed mean vs the model's expectation.
    EXPECT_LT(std::abs(cell.error_us), 0.5);
    if (closed_form(cell.pub, cell.sub) == 30000.0) saw_two_hop = true;
  }
  EXPECT_TRUE(saw_two_hop)
      << "no publisher at an end of the line — the composite-path case "
         "was never exercised; pick another seed";
}

TEST(ModelAuditTest, ParseModelRowRoundTripsAndRejectsMalformedRows) {
  const std::string good =
      "{\"t\":300000000,\"topic\":2,\"pub\":1,\"sub\":0,"
      "\"deadline_us\":90000,\"d_us\":30000.5,\"r\":0.975,"
      "\"list\":[[1,3,30000.5,0.975],[2,7,45000,1]]}";
  ModelRow row;
  std::string error;
  ASSERT_TRUE(ParseModelRow(good, &row, &error)) << error;
  EXPECT_EQ(row.t_us, 300000000);
  EXPECT_EQ(row.topic, 2u);
  EXPECT_EQ(row.pub, 1u);
  EXPECT_EQ(row.sub, 0u);
  EXPECT_EQ(row.deadline_us, 90000);
  EXPECT_DOUBLE_EQ(row.d_us, 30000.5);
  EXPECT_DOUBLE_EQ(row.r, 0.975);
  ASSERT_EQ(row.list.size(), 2u);
  EXPECT_DOUBLE_EQ(row.list[1].d_via_us, 45000.0);
  EXPECT_EQ(row.list[1].neighbor, NodeId(2));

  for (const char* bad : {
           "not json at all",
           "{\"t\":1,\"topic\":0,\"pub\":0,\"sub\":1}",  // missing d_us
           "{\"t\":1,\"topic\":0,\"pub\":0,\"sub\":1,\"deadline_us\":5,"
           "\"d_us\":oops,\"r\":1,\"list\":[]}",
           "{\"t\":1,\"topic\":0,\"pub\":0,\"sub\":1,\"deadline_us\":5,"
           "\"d_us\":2,\"r\":1,\"list\":[[1,2]]}",  // short tuple
       }) {
    EXPECT_FALSE(ParseModelRow(bad, &row, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ModelAuditTest, ForEachModelRowReportsTheFirstMalformedLine) {
  std::istringstream in(
      "{\"t\":1,\"topic\":0,\"pub\":0,\"sub\":1,\"deadline_us\":5,"
      "\"d_us\":2,\"r\":1,\"list\":[]}\n"
      "\n"
      "garbage line\n");
  std::size_t bad_line = 0;
  std::string bad_text;
  std::size_t seen = 0;
  EXPECT_FALSE(ForEachModelRow(
      in, [&](const ModelRow&) { ++seen; }, &bad_line, &bad_text));
  EXPECT_EQ(seen, 1u);  // the good row was delivered before the stop
  EXPECT_EQ(bad_line, 3u);
  EXPECT_NE(bad_text.find("garbage"), std::string::npos);
}

TEST(TraceExportTest, ForEachTraceJsonlStopsAtTheFirstMalformedLine) {
  std::istringstream in(
      "{\"t\":0,\"k\":\"publish\",\"pkt\":7,\"copy\":0,\"node\":1,"
      "\"peer\":-1,\"link\":-1,\"aux\":0,\"x\":3}\n"
      "\n"
      "{\"t\":5,\"k\":\"no-such-kind\",\"pkt\":7,\"copy\":0,\"node\":1,"
      "\"peer\":-1,\"link\":-1,\"aux\":0,\"x\":0}\n");
  std::size_t bad_line = 0;
  std::string bad_text;
  std::size_t seen = 0;
  EXPECT_FALSE(ForEachTraceJsonl(
      in, [&](const TraceRecord&) { ++seen; }, &bad_line, &bad_text));
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(bad_line, 3u);
  EXPECT_NE(bad_text.find("no-such-kind"), std::string::npos);
}

// Merging per-rep histograms must reproduce the whole-run distribution
// exactly — same buckets, therefore the same quantiles — both through
// MergeFrom and through the raw-bucket snapshot round trip.
TEST(LogLinearHistogramTest, MergedShardsMatchWholeRunExactly) {
  LogLinearHistogram whole;
  LogLinearHistogram shards[4];
  std::uint64_t v = 9;
  for (int i = 0; i < 4000; ++i) {
    v = v * 1664525 + 1013904223;  // deterministic LCG spread
    const std::int64_t sample = static_cast<std::int64_t>(v % 5000000);
    whole.Record(sample);
    shards[i % 4].Record(sample);
  }

  LogLinearHistogram merged;
  for (const LogLinearHistogram& shard : shards) merged.MergeFrom(shard);

  LogLinearHistogram absorbed;
  for (const LogLinearHistogram& shard : shards) {
    absorbed.AbsorbSnapshot(shard.Snapshot());
  }

  for (const LogLinearHistogram* h : {&merged, &absorbed}) {
    EXPECT_EQ(h->count(), whole.count());
    EXPECT_EQ(h->sum(), whole.sum());
    EXPECT_EQ(h->min(), whole.min());
    EXPECT_EQ(h->max(), whole.max());
    for (int b = 0; b < LogLinearHistogram::kBucketCount; ++b) {
      ASSERT_EQ(h->CountAt(b), whole.CountAt(b)) << "bucket " << b;
    }
    for (const double q :
         {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(h->ValueAtQuantile(q), whole.ValueAtQuantile(q)) << q;
    }
  }
}

TEST(FlightRecorderTest, LossyPostmortemSaysSoAndCountsOverwrites) {
  Scheduler scheduler;
  FlightRecorder::Config small;
  small.ring_capacity = 8;
  FlightRecorder recorder(scheduler, small);
  recorder.set_enabled(true);
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.Record(TraceEventKind::kPublish, i, 0, NodeId(0), NodeId(),
                    LinkId());
  }
  EXPECT_EQ(recorder.overwritten(), 12u);

  std::ostringstream dump;
  recorder.DumpPostmortem(dump, 8, "test");
  EXPECT_NE(dump.str().find("LOSSY"), std::string::npos) << dump.str();
  EXPECT_NE(dump.str().find("12"), std::string::npos) << dump.str();
}

TEST(TraceIntegrationTest, OverwrittenCountSurfacesInTheRunSummary) {
  // Ring-only tracing with a tiny ring: the busy run must wrap, and the
  // summary must say by how much.
  ScenarioConfig config = ChaosCocktailConfig();
  config.trace = true;
  config.trace_ring_capacity = 64;
  const RunSummary summary = RunScenario(config);
  EXPECT_GT(summary.trace_records_overwritten, 0u);

  // With a sink attached nothing is ever lost.
  TempFile trace_file("analysis_sink.jsonl");
  ScenarioConfig sink_config = ChaosCocktailConfig();
  sink_config.trace_ring_capacity = 64;
  sink_config.trace_out = trace_file.path;
  const RunSummary sink_summary = RunScenario(sink_config);
  EXPECT_EQ(sink_summary.trace_records_overwritten, 0u);
}

}  // namespace
}  // namespace dcrd
