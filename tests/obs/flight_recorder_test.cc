// Flight recorder: ring wrap-around semantics, sink-mode lossless flushing,
// sim-time stamping, and the postmortem dump's framing/content.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace_export.h"

namespace dcrd {
namespace {

FlightRecorder::Config SmallRing(std::size_t capacity) {
  FlightRecorder::Config config;
  config.ring_capacity = capacity;
  return config;
}

TEST(FlightRecorderTest, DisabledByDefaultAndRecordsNothing) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(TraceEventKind::kPublish, 1, 0, NodeId(0), NodeId(),
                  LinkId());
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndCountsOverwritten) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing(4));
  recorder.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.Record(TraceEventKind::kPublish, i, 0, NodeId(0), NodeId(),
                    LinkId());
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.overwritten(), 6u);
  // at(0) is the oldest survivor: packets 6, 7, 8, 9 remain.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recorder.at(i).packet, 6u + i);
  }
}

TEST(FlightRecorderTest, SinkModeFlushesOnWrapWithoutLoss) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing(4));
  recorder.set_enabled(true);
  std::ostringstream sink;
  recorder.set_sink(&sink);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.Record(TraceEventKind::kHopSend, i, i + 100, NodeId(1),
                    NodeId(2), LinkId(3), 0, static_cast<std::uint16_t>(i));
  }
  recorder.Flush();  // drain the tail
  EXPECT_EQ(recorder.overwritten(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.size(), 0u);

  std::istringstream in(sink.str());
  std::size_t dropped = 0;
  const std::vector<TraceRecord> parsed = ReadTraceJsonl(in, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(parsed.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(parsed[i].packet, i);
    EXPECT_EQ(parsed[i].copy, i + 100);
    EXPECT_EQ(parsed[i].kind, TraceEventKind::kHopSend);
  }
}

TEST(FlightRecorderTest, RecordsStampTheSchedulerClock) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing(8));
  recorder.set_enabled(true);
  scheduler.ScheduleAt(SimTime::FromMicros(5000), [&recorder] {
    recorder.Record(TraceEventKind::kDeliver, 42, 0, NodeId(3), NodeId(0),
                    LinkId());
  });
  scheduler.Run();
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.at(0).t_us, 5000);
  EXPECT_EQ(recorder.at(0).packet, 42u);
}

TEST(FlightRecorderTest, PostmortemShowsNewestRecordsAndReason) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing(8));
  recorder.set_enabled(true);
  for (std::uint64_t i = 0; i < 8; ++i) {
    recorder.Record(TraceEventKind::kPublish, i, 0, NodeId(0), NodeId(),
                    LinkId());
  }
  std::ostringstream os;
  recorder.DumpPostmortem(os, /*last_n=*/3, "unit-test violation");
  const std::string dump = os.str();
  EXPECT_NE(dump.find("unit-test violation"), std::string::npos);
  // Only the newest three packets appear.
  EXPECT_NE(dump.find("m7"), std::string::npos);
  EXPECT_NE(dump.find("m6"), std::string::npos);
  EXPECT_NE(dump.find("m5"), std::string::npos);
  EXPECT_EQ(dump.find("m4 "), std::string::npos);
}

TEST(FlightRecorderTest, RecordsStampShardAndRunningSeq) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing(8));
  recorder.set_enabled(true);
  recorder.set_shard(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.Record(TraceEventKind::kPublish, i, 0, NodeId(0), NodeId(),
                    LinkId());
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recorder.at(i).shard, 3u);
    EXPECT_EQ(recorder.at(i).seq, static_cast<std::uint32_t>(i));
  }
}

TEST(FlightRecorderTest, LossyShardedPostmortemNamesTheShard) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing(4));
  recorder.set_enabled(true);
  recorder.set_shard(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.Record(TraceEventKind::kPublish, i, 0, NodeId(0), NodeId(),
                    LinkId());
  }
  std::ostringstream os;
  recorder.DumpPostmortem(os, /*last_n=*/4, "overflow check");
  const std::string dump = os.str();
  // The header names the shard and its overwritten count, so a multi-shard
  // postmortem attributes loss to the right ring.
  EXPECT_NE(dump.find("[shard 2]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("6 overwritten on shard 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("this shard's ring"), std::string::npos) << dump;

  // An unsharded recorder keeps the unlabeled wording.
  FlightRecorder plain(scheduler, SmallRing(2));
  plain.set_enabled(true);
  for (std::uint64_t i = 0; i < 4; ++i) {
    plain.Record(TraceEventKind::kPublish, i, 0, NodeId(0), NodeId(),
                 LinkId());
  }
  std::ostringstream plain_os;
  plain.DumpPostmortem(plain_os, /*last_n=*/2, "overflow check");
  EXPECT_EQ(plain_os.str().find("shard"), std::string::npos)
      << plain_os.str();
}

}  // namespace
}  // namespace dcrd
