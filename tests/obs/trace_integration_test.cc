// End-to-end observability: a traced run must (a) leave the simulation
// results bit-identical to an untraced run, (b) produce a trace from which
// a packet's full hop timeline — including retransmissions and upstream
// reroutes — can be reconstructed, and (c) dump a postmortem when the
// invariant checker fires.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/topology.h"
#include "net/overlay_network.h"
#include "obs/flight_recorder.h"
#include "obs/trace_export.h"
#include "sim/engine.h"
#include "sim/invariant_checker.h"
#include "sim/metrics.h"

namespace dcrd {
namespace {

// Sparse, failure-heavy, m = 2: short sending lists make upstream reroutes
// real, and the retransmission budget makes retransmits real.
ScenarioConfig StressedConfig() {
  ScenarioConfig config;
  config.node_count = 20;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 3;
  config.failure_probability = 0.15;
  config.loss_rate = 1e-3;
  config.max_transmissions = 2;
  config.sim_time = SimDuration::Seconds(60);
  config.seed = 1;
  return config;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(TraceIntegrationTest, TracedRunMatchesUntracedRunExactly) {
  const RunSummary untraced = RunScenario(StressedConfig());

  TempFile trace_file("trace_eq.jsonl");
  TempFile metrics_file("trace_eq_metrics.json");
  TempFile series_file("trace_eq_series.json");
  ScenarioConfig traced_config = StressedConfig();
  traced_config.trace = true;
  traced_config.trace_out = trace_file.path;
  traced_config.metrics_json = metrics_file.path;
  traced_config.timeseries_out = series_file.path;
  traced_config.timeseries_interval = SimDuration::Millis(500);
  const RunSummary traced = RunScenario(traced_config);

  EXPECT_EQ(traced.expected_pairs, untraced.expected_pairs);
  EXPECT_EQ(traced.delivered_pairs, untraced.delivered_pairs);
  EXPECT_EQ(traced.qos_pairs, untraced.qos_pairs);
  EXPECT_EQ(traced.duplicate_deliveries, untraced.duplicate_deliveries);
  EXPECT_EQ(traced.data_transmissions, untraced.data_transmissions);
  EXPECT_EQ(traced.ack_transmissions, untraced.ack_transmissions);
  EXPECT_EQ(traced.control_transmissions, untraced.control_transmissions);
  EXPECT_EQ(traced.messages_published, untraced.messages_published);
  EXPECT_EQ(traced.retransmissions, untraced.retransmissions);
  EXPECT_EQ(traced.spurious_retransmissions,
            untraced.spurious_retransmissions);
  EXPECT_EQ(traced.delay_ms_samples, untraced.delay_ms_samples);
  // Observability fields are not part of the experiment's identity.
  EXPECT_EQ(traced_config.Describe(), StressedConfig().Describe());
}

TEST(TraceIntegrationTest, TimelineReconstructsRetransmitsAndReroutes) {
  TempFile trace_file("trace_timeline.jsonl");
  ScenarioConfig config = StressedConfig();
  config.trace_out = trace_file.path;
  RunScenario(config);

  std::ifstream in(trace_file.path);
  ASSERT_TRUE(in.is_open());
  std::size_t dropped = 0;
  const std::vector<TraceRecord> records = ReadTraceJsonl(in, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_FALSE(records.empty());

  std::uint64_t retransmitted = TraceRecord::kNoPacket;
  std::uint64_t rerouted = TraceRecord::kNoPacket;
  for (const TraceRecord& record : records) {
    if (record.kind == TraceEventKind::kRetransmit) {
      retransmitted = record.packet;
    }
    if (record.kind == TraceEventKind::kReroute) rerouted = record.packet;
  }
  ASSERT_NE(retransmitted, TraceRecord::kNoPacket)
      << "stressed run produced no retransmission";
  ASSERT_NE(rerouted, TraceRecord::kNoPacket)
      << "stressed run produced no upstream reroute";

  // The retransmitted packet's timeline starts with its publish and names
  // the retransmission.
  std::ostringstream timeline;
  ASSERT_GT(PrintPacketTimeline(timeline, records, retransmitted), 0u);
  const std::string out = timeline.str();
  EXPECT_NE(out.find("publish"), std::string::npos) << out;
  EXPECT_NE(out.find("retransmit"), std::string::npos) << out;

  std::ostringstream rerouted_timeline;
  ASSERT_GT(PrintPacketTimeline(rerouted_timeline, records, rerouted), 0u);
  EXPECT_NE(rerouted_timeline.str().find("reroute"), std::string::npos);
}

TEST(TraceIntegrationTest, InvariantViolationDumpsPostmortemWithThePacket) {
  // Drive the checker directly with a routing loop while a recorder is
  // attached; the first violation must dump the recorder's recent events
  // (which include the offending packet) to stderr.
  Graph graph = Line(3, SimDuration::Millis(10));
  Scheduler scheduler;
  FailureSchedule failures(1, 0.0);
  OverlayNetwork network(graph, scheduler, failures, 0.0, Rng(1));
  SubscriptionTable subscriptions;
  subscriptions.AddTopic(NodeId(0));
  subscriptions.AddSubscription(TopicId(0), NodeId(2),
                                SimDuration::Millis(100));
  MetricsCollector metrics(subscriptions);
  SimInvariantChecker checker(network, subscriptions, metrics);

  FlightRecorder recorder(scheduler);
  recorder.set_enabled(true);
  checker.set_flight_recorder(&recorder);

  Message message;
  message.id = MessageId(77);
  message.topic = TopicId(0);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::Zero();
  recorder.Record(TraceEventKind::kPublish, 77, 0, NodeId(0), NodeId(),
                  LinkId());
  recorder.Record(TraceEventKind::kHopSend, 77, 1, NodeId(0), NodeId(1),
                  *graph.FindEdge(NodeId(0), NodeId(1)));

  Packet packet(message, {NodeId(2)});
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(1));
  packet.RecordOnPath(NodeId(2));

  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  checker.OnCopyArrival(1, NodeId(0), NodeId(2), packet, /*handed_up=*/true);
  std::cerr.rdbuf(old);

  EXPECT_EQ(checker.violation_count(), 1u);
  const std::string dump = captured.str();
  EXPECT_NE(dump.find("postmortem"), std::string::npos) << dump;
  EXPECT_NE(dump.find("routing loop"), std::string::npos) << dump;
  EXPECT_NE(dump.find("m77"), std::string::npos) << dump;
  EXPECT_NE(dump.find("hop-send"), std::string::npos) << dump;
}

}  // namespace
}  // namespace dcrd
