// Trace export: JSONL round trip, human rendering, and the Chrome
// trace_event document — including per-broker-track event structure and the
// begin/end pairing of copy lifetimes.
#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_record.h"

namespace dcrd {
namespace {

TraceRecord Make(TraceEventKind kind, std::int64_t t_us,
                 std::uint64_t packet, std::uint64_t copy, std::uint32_t node,
                 std::uint32_t peer, std::uint32_t link,
                 std::uint8_t aux8 = 0, std::uint16_t aux16 = 0) {
  TraceRecord record;
  record.t_us = t_us;
  record.packet = packet;
  record.copy = copy;
  record.node = node;
  record.peer = peer;
  record.link = link;
  record.kind = kind;
  record.aux8 = aux8;
  record.aux16 = aux16;
  return record;
}

TEST(TraceExportTest, JsonlRoundTripsEveryKindAndSentinel) {
  std::vector<TraceRecord> records;
  for (int k = 0; k < kTraceEventKindCount; ++k) {
    records.push_back(Make(static_cast<TraceEventKind>(k), 1000 + k,
                           /*packet=*/k % 3 == 0 ? TraceRecord::kNoPacket
                                                 : static_cast<std::uint64_t>(k),
                           /*copy=*/static_cast<std::uint64_t>(k) * 7,
                           /*node=*/k % 4 == 0 ? TraceRecord::kNoId
                                               : static_cast<std::uint32_t>(k),
                           /*peer=*/static_cast<std::uint32_t>(k + 1),
                           /*link=*/k % 5 == 0 ? TraceRecord::kNoId
                                               : static_cast<std::uint32_t>(k),
                           /*aux8=*/static_cast<std::uint8_t>(k),
                           /*aux16=*/static_cast<std::uint16_t>(k * 11)));
  }
  char buf[kMaxTraceLineBytes];
  for (const TraceRecord& record : records) {
    const int len = FormatTraceJsonl(record, buf, sizeof(buf));
    ASSERT_GT(len, 0);
    EXPECT_EQ(buf[len - 1], '\n');
    TraceRecord parsed;
    ASSERT_TRUE(ParseTraceJsonl(std::string_view(buf, len - 1), &parsed));
    EXPECT_EQ(parsed.t_us, record.t_us);
    EXPECT_EQ(parsed.packet, record.packet);
    EXPECT_EQ(parsed.copy, record.copy);
    EXPECT_EQ(parsed.node, record.node);
    EXPECT_EQ(parsed.peer, record.peer);
    EXPECT_EQ(parsed.link, record.link);
    EXPECT_EQ(parsed.kind, record.kind);
    EXPECT_EQ(parsed.aux8, record.aux8);
    EXPECT_EQ(parsed.aux16, record.aux16);
  }
}

TEST(TraceExportTest, ParseRejectsMalformedLines) {
  TraceRecord out;
  EXPECT_FALSE(ParseTraceJsonl("", &out));
  EXPECT_FALSE(ParseTraceJsonl("not json", &out));
  EXPECT_FALSE(ParseTraceJsonl("{\"t\":1}", &out));
  EXPECT_FALSE(ParseTraceJsonl(
      "{\"t\":1,\"k\":\"no-such-kind\",\"pkt\":1,\"copy\":0,\"node\":0,"
      "\"peer\":0,\"link\":0,\"aux\":0,\"x\":0}",
      &out));
}

TEST(TraceExportTest, ReadJsonlSkipsBlankAndCountsBadLines) {
  char buf[kMaxTraceLineBytes];
  const TraceRecord record =
      Make(TraceEventKind::kDeliver, 99, 5, 0, 2, 0, TraceRecord::kNoId);
  FormatTraceJsonl(record, buf, sizeof(buf));
  std::istringstream in(std::string(buf) + "\n\ngarbage\n" + buf);
  std::size_t dropped = 0;
  const std::vector<TraceRecord> parsed = ReadTraceJsonl(in, &dropped);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(dropped, 1u);
}

TEST(TraceExportTest, HumanLinesNameKindPacketAndEndpoints) {
  char buf[kMaxTraceLineBytes];
  FormatTraceHuman(Make(TraceEventKind::kHopSend, 150, 5, 17, 0, 3, 5), buf,
                   sizeof(buf));
  const std::string hop(buf);
  EXPECT_NE(hop.find("hop-send"), std::string::npos) << hop;
  EXPECT_NE(hop.find("m5"), std::string::npos) << hop;
  EXPECT_NE(hop.find("n0"), std::string::npos) << hop;
  EXPECT_NE(hop.find("n3"), std::string::npos) << hop;

  FormatTraceHuman(
      Make(TraceEventKind::kDrop, 150, 5, 17, 0, 3, 5,
           static_cast<std::uint8_t>(TraceDropReason::kLinkDown)),
      buf, sizeof(buf));
  const std::string drop(buf);
  EXPECT_NE(drop.find("drop"), std::string::npos) << drop;
  EXPECT_NE(drop.find("link-down"), std::string::npos) << drop;
}

// Minimal scanner for the Chrome trace document: pulls out (ph, ts, pid,
// tid, id) per event without a JSON library. Good enough to validate the
// structural claims the export makes.
struct ChromeEvent {
  char ph = '?';
  std::int64_t ts = -1;
  std::int64_t tid = -1;
  std::string id;
};

std::vector<ChromeEvent> ScanChrome(const std::string& json) {
  std::vector<ChromeEvent> events;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    ChromeEvent event;
    event.ph = json[pos + 6];
    const std::size_t obj_start = json.rfind('{', pos);
    const std::size_t obj_end = json.find('}', pos);
    const std::string obj = json.substr(obj_start, obj_end - obj_start);
    if (const auto ts = obj.find("\"ts\":"); ts != std::string::npos) {
      event.ts = std::stoll(obj.substr(ts + 5));
    }
    if (const auto tid = obj.find("\"tid\":"); tid != std::string::npos) {
      event.tid = std::stoll(obj.substr(tid + 6));
    }
    if (const auto id = obj.find("\"id\":\""); id != std::string::npos) {
      const std::size_t end = obj.find('"', id + 6);
      event.id = obj.substr(id + 6, end - (id + 6));
    }
    events.push_back(event);
    pos = obj_end;
  }
  return events;
}

TEST(TraceExportTest, ChromeTracePairsCopyLifetimesPerBrokerTrack) {
  // Copy 17 completes (send -> ack); copy 18 dies (send -> budget
  // exhausted); copy 19 is left open and must be closed at the last
  // timestamp. Deliver/publish become instants.
  std::vector<TraceRecord> records;
  records.push_back(Make(TraceEventKind::kPublish, 0, 5, 0, 0,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  records.push_back(Make(TraceEventKind::kHopSend, 10, 5, 17, 0, 1, 2));
  records.push_back(Make(TraceEventKind::kHopSend, 20, 5, 18, 0, 3, 4));
  records.push_back(Make(TraceEventKind::kAck, 30, 5, 17, 0, 1, 2));
  records.push_back(
      Make(TraceEventKind::kBudgetExhausted, 40, 5, 18, 0, 3, 4));
  records.push_back(Make(TraceEventKind::kHopSend, 50, 5, 19, 1, 3, 7));
  records.push_back(Make(TraceEventKind::kDeliver, 60, 5, 0, 3,
                         TraceRecord::kNoId, TraceRecord::kNoId));

  std::ostringstream os;
  WriteChromeTrace(os, records);
  const std::string json = os.str();

  // Document shape: a traceEvents array plus broker thread metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dcrd-sim"), std::string::npos);
  EXPECT_NE(json.find("broker n0"), std::string::npos);
  EXPECT_NE(json.find("broker n3"), std::string::npos);

  const std::vector<ChromeEvent> events = ScanChrome(json);
  std::map<std::string, std::vector<const ChromeEvent*>> by_id;
  std::int64_t last_ts = -1;
  int begins = 0;
  int ends = 0;
  int instants = 0;
  for (const ChromeEvent& event : events) {
    if (event.ph == 'b') ++begins;
    if (event.ph == 'e') ++ends;
    if (event.ph == 'i') ++instants;
    if (event.ph == 'b' || event.ph == 'e') {
      by_id[event.id].push_back(&event);
    }
    if (event.ph != 'M') {
      // The export sorts by timestamp; nesting in each track relies on it.
      EXPECT_GE(event.ts, last_ts);
      last_ts = event.ts;
    }
  }
  EXPECT_EQ(begins, 3);  // copies 17, 18, 19
  EXPECT_EQ(ends, 3);    // ack, exhaustion, and the close-at-end for 19
  EXPECT_EQ(instants, 2);  // publish + deliver
  for (const auto& [id, pair] : by_id) {
    ASSERT_EQ(pair.size(), 2u) << "copy " << id;
    EXPECT_EQ(pair[0]->ph, 'b') << "copy " << id;
    EXPECT_EQ(pair[1]->ph, 'e') << "copy " << id;
    EXPECT_LE(pair[0]->ts, pair[1]->ts) << "copy " << id;
  }
}

TEST(TraceExportTest, PacketTimelineFiltersAndOrders) {
  std::vector<TraceRecord> records;
  records.push_back(Make(TraceEventKind::kDeliver, 50, 9, 0, 3,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  records.push_back(Make(TraceEventKind::kPublish, 0, 9, 0, 0,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  records.push_back(Make(TraceEventKind::kPublish, 10, 8, 0, 1,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  std::ostringstream os;
  EXPECT_EQ(PrintPacketTimeline(os, records, 9), 2u);
  const std::string out = os.str();
  const std::size_t publish_at = out.find("publish");
  const std::size_t deliver_at = out.find("deliver");
  ASSERT_NE(publish_at, std::string::npos);
  ASSERT_NE(deliver_at, std::string::npos);
  EXPECT_LT(publish_at, deliver_at);
  EXPECT_EQ(out.find("m8"), std::string::npos);
}

}  // namespace
}  // namespace dcrd
