// Trace export: JSONL round trip, human rendering, and the Chrome
// trace_event document — including per-broker-track event structure and the
// begin/end pairing of copy lifetimes.
#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/shard_profiler.h"
#include "obs/trace_record.h"

namespace dcrd {
namespace {

TraceRecord Make(TraceEventKind kind, std::int64_t t_us,
                 std::uint64_t packet, std::uint64_t copy, std::uint32_t node,
                 std::uint32_t peer, std::uint32_t link,
                 std::uint8_t aux8 = 0, std::uint16_t aux16 = 0,
                 std::uint32_t seq = 0, std::uint16_t shard = 0) {
  TraceRecord record;
  record.t_us = t_us;
  record.packet = packet;
  record.copy = copy;
  record.node = node;
  record.peer = peer;
  record.link = link;
  record.seq = seq;
  record.kind = kind;
  record.aux8 = aux8;
  record.aux16 = aux16;
  record.shard = shard;
  return record;
}

TEST(TraceExportTest, JsonlRoundTripsEveryKindAndSentinel) {
  std::vector<TraceRecord> records;
  for (int k = 0; k < kTraceEventKindCount; ++k) {
    records.push_back(Make(static_cast<TraceEventKind>(k), 1000 + k,
                           /*packet=*/k % 3 == 0 ? TraceRecord::kNoPacket
                                                 : static_cast<std::uint64_t>(k),
                           /*copy=*/static_cast<std::uint64_t>(k) * 7,
                           /*node=*/k % 4 == 0 ? TraceRecord::kNoId
                                               : static_cast<std::uint32_t>(k),
                           /*peer=*/static_cast<std::uint32_t>(k + 1),
                           /*link=*/k % 5 == 0 ? TraceRecord::kNoId
                                               : static_cast<std::uint32_t>(k),
                           /*aux8=*/static_cast<std::uint8_t>(k),
                           /*aux16=*/static_cast<std::uint16_t>(k * 11),
                           /*seq=*/static_cast<std::uint32_t>(k * 13),
                           /*shard=*/static_cast<std::uint16_t>(k % 5)));
  }
  char buf[kMaxTraceLineBytes];
  for (const TraceRecord& record : records) {
    const int len = FormatTraceJsonl(record, buf, sizeof(buf));
    ASSERT_GT(len, 0);
    EXPECT_EQ(buf[len - 1], '\n');
    TraceRecord parsed;
    ASSERT_TRUE(ParseTraceJsonl(std::string_view(buf, len - 1), &parsed));
    EXPECT_EQ(parsed.t_us, record.t_us);
    EXPECT_EQ(parsed.packet, record.packet);
    EXPECT_EQ(parsed.copy, record.copy);
    EXPECT_EQ(parsed.node, record.node);
    EXPECT_EQ(parsed.peer, record.peer);
    EXPECT_EQ(parsed.link, record.link);
    EXPECT_EQ(parsed.kind, record.kind);
    EXPECT_EQ(parsed.aux8, record.aux8);
    EXPECT_EQ(parsed.aux16, record.aux16);
    EXPECT_EQ(parsed.seq, record.seq);
    EXPECT_EQ(parsed.shard, record.shard);
  }
}

TEST(TraceExportTest, ParseDefaultsSeqAndShardOnLegacyLines) {
  // A line from a pre-shard-stamp capture — no seq/shard keys.
  TraceRecord out;
  ASSERT_TRUE(ParseTraceJsonl(
      "{\"t\":42,\"k\":\"publish\",\"pkt\":7,\"copy\":0,\"node\":2,"
      "\"peer\":-1,\"link\":-1,\"aux\":0,\"x\":3}",
      &out));
  EXPECT_EQ(out.t_us, 42);
  EXPECT_EQ(out.seq, 0u);
  EXPECT_EQ(out.shard, 0u);
}

TEST(TraceExportTest, ParseRejectsMalformedLines) {
  TraceRecord out;
  EXPECT_FALSE(ParseTraceJsonl("", &out));
  EXPECT_FALSE(ParseTraceJsonl("not json", &out));
  EXPECT_FALSE(ParseTraceJsonl("{\"t\":1}", &out));
  EXPECT_FALSE(ParseTraceJsonl(
      "{\"t\":1,\"k\":\"no-such-kind\",\"pkt\":1,\"copy\":0,\"node\":0,"
      "\"peer\":0,\"link\":0,\"aux\":0,\"x\":0}",
      &out));
}

TEST(TraceExportTest, ReadJsonlSkipsBlankAndCountsBadLines) {
  char buf[kMaxTraceLineBytes];
  const TraceRecord record =
      Make(TraceEventKind::kDeliver, 99, 5, 0, 2, 0, TraceRecord::kNoId);
  FormatTraceJsonl(record, buf, sizeof(buf));
  std::istringstream in(std::string(buf) + "\n\ngarbage\n" + buf);
  std::size_t dropped = 0;
  const std::vector<TraceRecord> parsed = ReadTraceJsonl(in, &dropped);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(dropped, 1u);
}

TEST(TraceExportTest, HumanLinesNameKindPacketAndEndpoints) {
  char buf[kMaxTraceLineBytes];
  FormatTraceHuman(Make(TraceEventKind::kHopSend, 150, 5, 17, 0, 3, 5), buf,
                   sizeof(buf));
  const std::string hop(buf);
  EXPECT_NE(hop.find("hop-send"), std::string::npos) << hop;
  EXPECT_NE(hop.find("m5"), std::string::npos) << hop;
  EXPECT_NE(hop.find("n0"), std::string::npos) << hop;
  EXPECT_NE(hop.find("n3"), std::string::npos) << hop;

  FormatTraceHuman(
      Make(TraceEventKind::kDrop, 150, 5, 17, 0, 3, 5,
           static_cast<std::uint8_t>(TraceDropReason::kLinkDown)),
      buf, sizeof(buf));
  const std::string drop(buf);
  EXPECT_NE(drop.find("drop"), std::string::npos) << drop;
  EXPECT_NE(drop.find("link-down"), std::string::npos) << drop;
}

// Minimal scanner for the Chrome trace document: pulls out (ph, ts, pid,
// tid, id) per event without a JSON library. Good enough to validate the
// structural claims the export makes.
struct ChromeEvent {
  char ph = '?';
  std::int64_t ts = -1;
  std::int64_t tid = -1;
  std::string id;
};

std::vector<ChromeEvent> ScanChrome(const std::string& json) {
  std::vector<ChromeEvent> events;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    ChromeEvent event;
    event.ph = json[pos + 6];
    const std::size_t obj_start = json.rfind('{', pos);
    const std::size_t obj_end = json.find('}', pos);
    const std::string obj = json.substr(obj_start, obj_end - obj_start);
    if (const auto ts = obj.find("\"ts\":"); ts != std::string::npos) {
      event.ts = std::stoll(obj.substr(ts + 5));
    }
    if (const auto tid = obj.find("\"tid\":"); tid != std::string::npos) {
      event.tid = std::stoll(obj.substr(tid + 6));
    }
    if (const auto id = obj.find("\"id\":\""); id != std::string::npos) {
      const std::size_t end = obj.find('"', id + 6);
      event.id = obj.substr(id + 6, end - (id + 6));
    }
    events.push_back(event);
    pos = obj_end;
  }
  return events;
}

TEST(TraceExportTest, ChromeTracePairsCopyLifetimesPerBrokerTrack) {
  // Copy 17 completes (send -> ack); copy 18 dies (send -> budget
  // exhausted); copy 19 is left open and must be closed at the last
  // timestamp. Deliver/publish become instants.
  std::vector<TraceRecord> records;
  records.push_back(Make(TraceEventKind::kPublish, 0, 5, 0, 0,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  records.push_back(Make(TraceEventKind::kHopSend, 10, 5, 17, 0, 1, 2));
  records.push_back(Make(TraceEventKind::kHopSend, 20, 5, 18, 0, 3, 4));
  records.push_back(Make(TraceEventKind::kAck, 30, 5, 17, 0, 1, 2));
  records.push_back(
      Make(TraceEventKind::kBudgetExhausted, 40, 5, 18, 0, 3, 4));
  records.push_back(Make(TraceEventKind::kHopSend, 50, 5, 19, 1, 3, 7));
  records.push_back(Make(TraceEventKind::kDeliver, 60, 5, 0, 3,
                         TraceRecord::kNoId, TraceRecord::kNoId));

  std::ostringstream os;
  WriteChromeTrace(os, records);
  const std::string json = os.str();

  // Document shape: a traceEvents array plus broker thread metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("dcrd-sim"), std::string::npos);
  EXPECT_NE(json.find("broker n0"), std::string::npos);
  EXPECT_NE(json.find("broker n3"), std::string::npos);

  const std::vector<ChromeEvent> events = ScanChrome(json);
  std::map<std::string, std::vector<const ChromeEvent*>> by_id;
  std::int64_t last_ts = -1;
  int begins = 0;
  int ends = 0;
  int instants = 0;
  for (const ChromeEvent& event : events) {
    if (event.ph == 'b') ++begins;
    if (event.ph == 'e') ++ends;
    if (event.ph == 'i') ++instants;
    if (event.ph == 'b' || event.ph == 'e') {
      by_id[event.id].push_back(&event);
    }
    if (event.ph != 'M') {
      // The export sorts by timestamp; nesting in each track relies on it.
      EXPECT_GE(event.ts, last_ts);
      last_ts = event.ts;
    }
  }
  EXPECT_EQ(begins, 3);  // copies 17, 18, 19
  EXPECT_EQ(ends, 3);    // ack, exhaustion, and the close-at-end for 19
  EXPECT_EQ(instants, 2);  // publish + deliver
  for (const auto& [id, pair] : by_id) {
    ASSERT_EQ(pair.size(), 2u) << "copy " << id;
    EXPECT_EQ(pair[0]->ph, 'b') << "copy " << id;
    EXPECT_EQ(pair[1]->ph, 'e') << "copy " << id;
    EXPECT_LE(pair[0]->ts, pair[1]->ts) << "copy " << id;
  }
}

// --- multi-file merge ------------------------------------------------------

std::string Jsonl(const std::vector<TraceRecord>& records) {
  std::string text;
  char buf[kMaxTraceLineBytes];
  for (const TraceRecord& record : records) {
    const int n = FormatTraceJsonl(record, buf, sizeof(buf));
    text.append(buf, static_cast<std::size_t>(n));
  }
  return text;
}

std::vector<TraceRecord> Merge(const std::vector<std::string>& files) {
  std::vector<std::istringstream> streams;
  streams.reserve(files.size());
  for (const std::string& file : files) streams.emplace_back(file);
  std::vector<std::istream*> ins;
  for (auto& stream : streams) ins.push_back(&stream);
  std::vector<TraceRecord> merged;
  EXPECT_TRUE(ForEachMergedTraceJsonl(
      ins, [&](const TraceRecord& record) { merged.push_back(record); }));
  return merged;
}

TEST(TraceExportTest, MergeOrdersByTimeSeqShardAcrossAdversarialFiles) {
  // Two shards whose streams interleave adversarially: bursts at equal
  // timestamps, one stream running far ahead, then the other catching up.
  const auto rec = [](std::int64_t t, std::uint32_t seq, std::uint16_t shard) {
    return Make(TraceEventKind::kPublish, t, 1, 0, 0, TraceRecord::kNoId,
                TraceRecord::kNoId, 0, 0, seq, shard);
  };
  const std::string shard0 = Jsonl(
      {rec(0, 0, 0), rec(10, 1, 0), rec(10, 2, 0), rec(300, 3, 0)});
  const std::string shard1 = Jsonl(
      {rec(0, 0, 1), rec(5, 1, 1), rec(10, 2, 1), rec(10, 3, 1),
       rec(300, 4, 1)});

  const std::vector<TraceRecord> merged = Merge({shard0, shard1});
  ASSERT_EQ(merged.size(), 9u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const TraceRecord& a = merged[i - 1];
    const TraceRecord& b = merged[i];
    const bool ordered =
        a.t_us < b.t_us ||
        (a.t_us == b.t_us &&
         (a.seq < b.seq || (a.seq == b.seq && a.shard < b.shard)));
    EXPECT_TRUE(ordered) << "position " << i;
  }

  // Argument order must not matter when shard stamps differ.
  const std::vector<TraceRecord> reversed = Merge({shard1, shard0});
  ASSERT_EQ(reversed.size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].t_us, reversed[i].t_us) << i;
    EXPECT_EQ(merged[i].seq, reversed[i].seq) << i;
    EXPECT_EQ(merged[i].shard, reversed[i].shard) << i;
  }
}

TEST(TraceExportTest, MergeOfOneFilePreservesFileOrder) {
  // A single stream must pass through untouched even where its (t, seq)
  // pairs would re-sort differently — merge never reorders within a file.
  const auto rec = [](std::int64_t t, std::uint32_t seq) {
    return Make(TraceEventKind::kAck, t, 2, 1, 3, 4, 5, 0, 0, seq, 0);
  };
  const std::vector<TraceRecord> original = {rec(50, 7), rec(50, 8),
                                             rec(60, 2)};
  const std::vector<TraceRecord> merged = Merge({Jsonl(original)});
  ASSERT_EQ(merged.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(merged[i].seq, original[i].seq) << i;
  }
}

TEST(TraceExportTest, MergeReportsTheOffendingFileAndLine) {
  const std::string good = Jsonl({Make(TraceEventKind::kPublish, 0, 1, 0, 0,
                                       TraceRecord::kNoId,
                                       TraceRecord::kNoId)});
  std::istringstream a(good);
  std::istringstream b(good + "garbage\n");
  std::vector<std::istream*> ins{&a, &b};
  std::size_t bad_file = 99, bad_line = 0;
  std::string bad_text;
  EXPECT_FALSE(ForEachMergedTraceJsonl(
      ins, [](const TraceRecord&) {}, &bad_file, &bad_line, &bad_text));
  EXPECT_EQ(bad_file, 1u);
  EXPECT_EQ(bad_line, 2u);
  EXPECT_EQ(bad_text, "garbage");
}

// --- Chrome exec tracks ----------------------------------------------------

TEST(TraceExportTest, ChromeTraceAddsPairedExecTracksFromProfile) {
  std::vector<TraceRecord> records;
  records.push_back(Make(TraceEventKind::kPublish, 0, 5, 0, 0,
                         TraceRecord::kNoId, TraceRecord::kNoId));

  ShardProfile profile;
  profile.shards = 2;
  profile.rounds = 4;
  profile.lookahead_us = 10;
  profile.shard_totals.assign(2, {});
  profile.matrix.assign(4, {});
  for (int b = 0; b < 2; ++b) {
    ShardProfile::Bucket bucket;
    bucket.first_round = static_cast<std::uint64_t>(b * 2);
    bucket.last_round = bucket.first_round + 1;
    bucket.busy_ns = {2'000'000, 1'000'000};
    bucket.stall_ns = {500'000, 1'500'000};
    bucket.critical_shard = 0;
    profile.buckets.push_back(bucket);
  }

  std::ostringstream os;
  WriteChromeTrace(os, records, &profile);
  const std::string json = os.str();

  EXPECT_NE(json.find("dcrd-exec"), std::string::npos);
  EXPECT_NE(json.find("shard 0 exec"), std::string::npos);
  EXPECT_NE(json.find("shard 1 exec"), std::string::npos);

  // 2 shards x 2 buckets x (busy + stall): every busy span has its stall
  // partner, and each shard's spans tile its wall clock without overlap.
  std::size_t busy_count = 0, stall_count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"name\":\"busy\"", pos)) != std::string::npos;
       ++pos) {
    ++busy_count;
  }
  for (std::size_t pos = 0;
       (pos = json.find("\"name\":\"stall\"", pos)) != std::string::npos;
       ++pos) {
    ++stall_count;
  }
  EXPECT_EQ(busy_count, 4u);
  EXPECT_EQ(stall_count, 4u);

  std::map<std::int64_t, std::vector<const ChromeEvent*>> x_by_tid;
  std::vector<ChromeEvent> events = ScanChrome(json);
  for (const ChromeEvent& event : events) {
    if (event.ph == 'X') x_by_tid[event.tid].push_back(&event);
  }
  ASSERT_EQ(x_by_tid.size(), 2u);
  for (const auto& [tid, spans] : x_by_tid) {
    ASSERT_EQ(spans.size(), 4u) << "shard " << tid;
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i]->ts, spans[i - 1]->ts) << "shard " << tid;
    }
    EXPECT_EQ(spans.front()->ts, 0) << "shard " << tid;
  }
  // Shard 0: 2ms busy + 0.5ms stall per bucket -> second bucket's busy span
  // starts at 2500us of cumulative wall clock.
  EXPECT_EQ(x_by_tid[0][2]->ts, 2500);
  // Shard 1: 1ms busy + 1.5ms stall per bucket.
  EXPECT_EQ(x_by_tid[1][2]->ts, 2500);
}

TEST(TraceExportTest, PacketTimelineFiltersAndOrders) {
  std::vector<TraceRecord> records;
  records.push_back(Make(TraceEventKind::kDeliver, 50, 9, 0, 3,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  records.push_back(Make(TraceEventKind::kPublish, 0, 9, 0, 0,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  records.push_back(Make(TraceEventKind::kPublish, 10, 8, 0, 1,
                         TraceRecord::kNoId, TraceRecord::kNoId));
  std::ostringstream os;
  EXPECT_EQ(PrintPacketTimeline(os, records, 9), 2u);
  const std::string out = os.str();
  const std::size_t publish_at = out.find("publish");
  const std::size_t deliver_at = out.find("deliver");
  ASSERT_NE(publish_at, std::string::npos);
  ASSERT_NE(deliver_at, std::string::npos);
  EXPECT_LT(publish_at, deliver_at);
  EXPECT_EQ(out.find("m8"), std::string::npos);
}

}  // namespace
}  // namespace dcrd
