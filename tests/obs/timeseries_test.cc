// Continuous telemetry: delta-sum conservation against the live registry,
// window alignment at epoch edges, the closed-form deadline-SLO math, the
// JSON round trip, and the shard merge algebra (identity and split-merge).
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "event/scheduler.h"
#include "obs/metrics_registry.h"

namespace dcrd {
namespace {

// Drives a sampler chain across `end` seconds of sim time, mutating the
// registry between samples via `mutate(window)` events placed mid-window.
struct SamplerRig {
  MetricsRegistry registry;
  Scheduler scheduler;

  TimeSeriesSampler MakeSampler(SimTime end,
                                SimDuration interval = SimDuration::Seconds(1),
                                std::size_t node_count = 0,
                                TimeSeriesSampler::BrokerHealthSource health =
                                    nullptr) {
    TimeSeriesConfig config;
    config.interval = interval;
    config.end = end;
    config.node_count = node_count;
    return TimeSeriesSampler(registry, scheduler, config, std::move(health));
  }
};

TEST(TimeSeriesSamplerTest, DeltaSumsConserveToRegistryTotals) {
  SamplerRig rig;
  std::uint64_t* work = rig.registry.AddCounter("test.work");
  std::uint64_t external = 0;
  rig.registry.RegisterCounter("test.external", &external);
  LogLinearHistogram* delay = rig.registry.AddHistogram("test.delay_us");

  TimeSeriesSampler sampler = rig.MakeSampler(SimTime::FromMicros(10000000));
  // A deterministic but uneven workload: bursts land in some windows, and
  // the recorded values cross bucket-group boundaries (values >> 32).
  std::uint64_t lcg = 12345;
  for (int w = 0; w < 10; ++w) {
    rig.scheduler.ScheduleAt(
        SimTime::FromMicros(w * 1000000 + 137), [&, w] {
          for (int i = 0; i <= w * 3; ++i) {
            lcg = lcg * 1664525 + 1013904223;
            *work += 1 + (lcg & 7);
            external += w;
            delay->Record(static_cast<std::int64_t>(lcg % 1000000));
          }
        });
  }
  rig.scheduler.Run();
  ASSERT_EQ(sampler.store().samples(), 11u);  // t = 0s .. 10s

  const TimeSeriesStore& store = sampler.store();
  std::uint64_t work_sum = 0;
  std::uint64_t external_sum = 0;
  for (std::size_t s = 0; s < store.samples(); ++s) {
    work_sum += store.counter_deltas[0][s];
    external_sum += store.counter_deltas[1][s];
  }
  EXPECT_EQ(work_sum, *work);
  EXPECT_EQ(external_sum, external);

  // Histogram deltas conserve per bucket, not just in aggregate.
  const TimeSeriesStore::HistogramDeltas& hd = store.histogram_deltas[0];
  std::uint64_t count_sum = 0;
  std::uint64_t sum_sum = 0;
  std::vector<std::uint64_t> by_bucket(LogLinearHistogram::kBucketCount, 0);
  for (std::size_t s = 0; s < store.samples(); ++s) {
    count_sum += hd.count_delta[s];
    sum_sum += hd.sum_delta[s];
  }
  for (std::size_t i = 0; i < hd.bucket.size(); ++i) {
    by_bucket[hd.bucket[i]] += hd.count[i];
  }
  EXPECT_EQ(count_sum, delay->count());
  EXPECT_EQ(sum_sum, delay->sum());
  for (int b = 0; b < LogLinearHistogram::kBucketCount; ++b) {
    EXPECT_EQ(by_bucket[static_cast<std::size_t>(b)], delay->CountAt(b))
        << "bucket " << b;
  }
}

TEST(TimeSeriesSamplerTest, WindowsAlignToEpochEdges) {
  SamplerRig rig;
  std::uint64_t* hits = rig.registry.AddCounter("test.hits");
  TimeSeriesSampler sampler = rig.MakeSampler(SimTime::FromMicros(3000000));

  // One increment per window interior, plus one in the post-`end` tail.
  for (const std::int64_t t_us :
       {std::int64_t{400000}, std::int64_t{1600000}, std::int64_t{2999999},
        std::int64_t{3400000}}) {
    rig.scheduler.ScheduleAt(SimTime::FromMicros(t_us), [&] { *hits += 1; });
  }
  rig.scheduler.Run();
  sampler.FinalizeAt(rig.scheduler.now());

  const TimeSeriesStore& store = sampler.store();
  ASSERT_EQ(store.samples(), 5u);
  EXPECT_EQ(store.t_us[0], 0);
  EXPECT_EQ(store.t_us[1], 1000000);
  EXPECT_EQ(store.t_us[2], 2000000);
  EXPECT_EQ(store.t_us[3], 3000000);
  EXPECT_EQ(store.t_us[4], 3400000);  // quiescence tail, not interval-aligned
  // Window s covers (t[s-1], t[s]]: the baseline window is empty, each
  // interior increment lands in exactly one window, 2999999us in window 3.
  EXPECT_EQ(store.counter_deltas[0][0], 0u);
  EXPECT_EQ(store.counter_deltas[0][1], 1u);
  EXPECT_EQ(store.counter_deltas[0][2], 1u);
  EXPECT_EQ(store.counter_deltas[0][3], 1u);
  EXPECT_EQ(store.counter_deltas[0][4], 1u);

  // FinalizeAt at the exact last sample time is a no-op, not a new row.
  sampler.FinalizeAt(rig.scheduler.now());
  EXPECT_EQ(sampler.store().samples(), 5u);
}

TEST(TimeSeriesSamplerTest, GaugesSampleLevelsNotDeltas) {
  SamplerRig rig;
  std::uint64_t level = 5;
  rig.registry.RegisterGauge("test.level", [&level] { return level; });
  TimeSeriesSampler sampler = rig.MakeSampler(SimTime::FromMicros(2000000));
  rig.scheduler.ScheduleAt(SimTime::FromMicros(500000), [&] { level = 9; });
  rig.scheduler.ScheduleAt(SimTime::FromMicros(1500000), [&] { level = 2; });
  rig.scheduler.Run();
  const TimeSeriesStore& store = sampler.store();
  ASSERT_EQ(store.samples(), 3u);
  EXPECT_EQ(store.gauge_values[0][0], 5u);
  EXPECT_EQ(store.gauge_values[0][1], 9u);
  EXPECT_EQ(store.gauge_values[0][2], 2u);
}

TEST(TimeSeriesSamplerTest, BrokerHealthColumnsAreSampleMajor) {
  SamplerRig rig;
  std::uint64_t tick = 0;
  TimeSeriesSampler sampler = rig.MakeSampler(
      SimTime::FromMicros(1000000), SimDuration::Seconds(1), /*node_count=*/3,
      [&tick](std::vector<BrokerHealth>& out) {
        for (std::size_t b = 0; b < out.size(); ++b) {
          out[b].pending_copies = tick * 10 + b;
          out[b].dedup_entries = b;
          out[b].rto_us = 100 + tick;
        }
        ++tick;
      });
  rig.scheduler.Run();
  const TimeSeriesStore& store = sampler.store();
  ASSERT_EQ(store.samples(), 2u);
  ASSERT_EQ(store.broker_pending.size(), 6u);
  EXPECT_EQ(store.broker_pending[0 * 3 + 2], 2u);    // sample 0, broker 2
  EXPECT_EQ(store.broker_pending[1 * 3 + 1], 11u);   // sample 1, broker 1
  EXPECT_EQ(store.broker_rto_us[1 * 3 + 0], 101u);
}

// The closed-form scenario from the SLO definition: a 3-broker fan-out
// publishes 10 messages to 2 subscribers (20 pairs) in window 1; 16 pairs
// arrive, 12 of them on time, with delays 1..16us. Window 2 is idle.
TEST(SloSeriesTest, ClosedFormWindowMath) {
  SamplerRig rig;
  std::uint64_t published = 0;
  std::uint64_t pairs = 0;
  std::uint64_t delivered = 0;
  std::uint64_t on_time = 0;
  rig.registry.RegisterCounter("slo.messages_published", &published,
                               MergePolicy::kReplicated);
  rig.registry.RegisterCounter("slo.pairs_published", &pairs,
                               MergePolicy::kReplicated);
  rig.registry.RegisterCounter("slo.pairs_delivered", &delivered);
  rig.registry.RegisterCounter("slo.pairs_on_time", &on_time);
  LogLinearHistogram* delay = rig.registry.AddHistogram("delivery.delay_us");

  TimeSeriesSampler sampler = rig.MakeSampler(SimTime::FromMicros(2000000));
  rig.scheduler.ScheduleAt(SimTime::FromMicros(250000), [&] {
    published = 10;
    pairs = 20;
    delivered = 16;
    on_time = 12;
    for (std::int64_t d = 1; d <= 16; ++d) delay->Record(d);
  });
  rig.scheduler.Run();

  const std::vector<SloWindow> slo = ComputeSloSeries(sampler.store());
  ASSERT_EQ(slo.size(), 2u);
  EXPECT_EQ(slo[0].t_us, 1000000);
  EXPECT_EQ(slo[0].published, 20u);
  EXPECT_EQ(slo[0].delivered, 16u);
  EXPECT_EQ(slo[0].on_time, 12u);
  EXPECT_DOUBLE_EQ(slo[0].delivery_ratio, 16.0 / 20.0);
  EXPECT_DOUBLE_EQ(slo[0].violation_rate, 4.0 / 16.0);
  // Delays 1..16 sit in exact unit buckets: nearest-rank quantiles.
  EXPECT_EQ(slo[0].delay_p50_us, 8u);
  EXPECT_EQ(slo[0].delay_p99_us, 16u);

  // Idle window: ratio degrades to the no-traffic convention.
  EXPECT_EQ(slo[1].published, 0u);
  EXPECT_DOUBLE_EQ(slo[1].delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(slo[1].violation_rate, 0.0);
  EXPECT_EQ(slo[1].delay_p99_us, 0u);
}

TEST(SloSeriesTest, EmptyWithoutSloCounters) {
  SamplerRig rig;
  rig.registry.AddCounter("test.other");
  TimeSeriesSampler sampler = rig.MakeSampler(SimTime::FromMicros(1000000));
  rig.scheduler.Run();
  EXPECT_TRUE(ComputeSloSeries(sampler.store()).empty());
}

// Builds a store via a driven sampler so serialization tests work on
// realistic content (non-empty histogram pool, broker columns, slo series).
TimeSeriesStore BuildStore() {
  SamplerRig rig;
  std::uint64_t delivered = 0;
  std::uint64_t pairs = 0;
  rig.registry.RegisterCounter("slo.pairs_published", &pairs,
                               MergePolicy::kReplicated);
  rig.registry.RegisterCounter("slo.pairs_delivered", &delivered);
  rig.registry.RegisterCounter("slo.pairs_on_time", &delivered);
  std::uint64_t level = 0;
  rig.registry.RegisterGauge("test.level", [&level] { return level; });
  LogLinearHistogram* delay = rig.registry.AddHistogram("delivery.delay_us");
  TimeSeriesSampler sampler = rig.MakeSampler(
      SimTime::FromMicros(3000000), SimDuration::Seconds(1), /*node_count=*/2,
      [&delivered](std::vector<BrokerHealth>& out) {
        out[0].pending_copies = delivered;
        out[1].dedup_entries = 7;
      });
  for (int w = 0; w < 3; ++w) {
    rig.scheduler.ScheduleAt(SimTime::FromMicros(w * 1000000 + 1), [&, w] {
      pairs += 5;
      delivered += 4;
      level = static_cast<std::uint64_t>(w);
      delay->Record(100 * (w + 1));
      delay->Record(100000 * (w + 1));
    });
  }
  rig.scheduler.Run();
  sampler.FinalizeAt(SimTime::FromMicros(3500000));
  return sampler.store();
}

TEST(TimeSeriesJsonTest, RoundTripIsByteIdentical) {
  const TimeSeriesStore store = BuildStore();
  std::ostringstream first;
  WriteTimeSeriesJson(first, store);

  TimeSeriesStore loaded;
  std::string error;
  ASSERT_TRUE(LoadTimeSeriesJson(first.str(), &loaded, &error)) << error;
  EXPECT_EQ(loaded.samples(), store.samples());
  EXPECT_EQ(loaded.counter_names, store.counter_names);
  EXPECT_EQ(loaded.node_count, store.node_count);

  std::ostringstream second;
  WriteTimeSeriesJson(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

TEST(TimeSeriesJsonTest, RejectsWrongSchema) {
  TimeSeriesStore store;
  std::string error;
  EXPECT_FALSE(LoadTimeSeriesJson("{\"schema\": \"bogus\"}", &store, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TimeSeriesMergeTest, MergeOfOneIsIdentity) {
  const TimeSeriesStore store = BuildStore();
  const TimeSeriesStore merged = MergeTimeSeriesStores({&store});
  std::ostringstream a;
  std::ostringstream b;
  WriteTimeSeriesJson(a, store);
  WriteTimeSeriesJson(b, merged);
  EXPECT_EQ(a.str(), b.str());
}

// The shard contract in miniature: split a workload across two registries
// the way the sharded engine splits ownership — kSum series disjointly,
// kReplicated series identically — and require the merge to be
// byte-identical to the unsplit run.
TEST(TimeSeriesMergeTest, SplitMergeEqualsUnsplit) {
  const auto drive = [](std::uint64_t owner_mask) {
    SamplerRig rig;
    std::uint64_t pairs = 0;       // replicated: every shard sees all of it
    std::uint64_t delivered = 0;   // summed: only owned work counts
    rig.registry.RegisterCounter("slo.pairs_published", &pairs,
                                 MergePolicy::kReplicated);
    rig.registry.RegisterCounter("slo.pairs_delivered", &delivered);
    LogLinearHistogram* delay = rig.registry.AddHistogram("delivery.delay_us");
    TimeSeriesSampler sampler = rig.MakeSampler(SimTime::FromMicros(2000000));
    for (int w = 0; w < 2; ++w) {
      rig.scheduler.ScheduleAt(SimTime::FromMicros(w * 1000000 + 9), [&, w] {
        pairs += 10;
        for (int item = 0; item < 6; ++item) {
          if (((owner_mask >> (item % 2)) & 1) == 0) continue;
          delivered += 1;
          delay->Record(50 * (item + 1) * (w + 1));
        }
      });
    }
    rig.scheduler.Run();
    return sampler.store();
  };

  const TimeSeriesStore full = drive(0b11);
  const TimeSeriesStore shard0 = drive(0b01);
  const TimeSeriesStore shard1 = drive(0b10);
  const TimeSeriesStore merged = MergeTimeSeriesStores({&shard0, &shard1});

  std::ostringstream want;
  std::ostringstream got;
  WriteTimeSeriesJson(want, full);
  WriteTimeSeriesJson(got, merged);
  EXPECT_EQ(want.str(), got.str());
}

TEST(TimeSeriesPrintTest, RendersShapeAndSloTable) {
  const TimeSeriesStore store = BuildStore();
  std::ostringstream os;
  PrintTimeSeries(os, store);
  const std::string out = os.str();
  EXPECT_NE(out.find("time series:"), std::string::npos) << out;
  EXPECT_NE(out.find("slo.pairs_delivered"), std::string::npos) << out;
  EXPECT_NE(out.find("SLO windows"), std::string::npos) << out;
}

}  // namespace
}  // namespace dcrd
