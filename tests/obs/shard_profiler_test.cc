// Shard-execution profiler: wire-byte model, merge math (totals, buckets,
// imbalance, critical-shard attribution), traffic-matrix conservation, and
// the JSON write -> load round trip dcrd_trace --shards depends on.
#include "obs/shard_profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/shard_exchange.h"
#include "pubsub/packet.h"

namespace dcrd {
namespace {

XMsg DataMsg(int destinations, int hops) {
  XMsg msg;
  msg.kind = XMsgKind::kData;
  std::vector<NodeId> dests;
  for (int i = 0; i < destinations; ++i) dests.push_back(NodeId(i + 1));
  msg.packet = Packet(Message{}, std::move(dests));
  for (int i = 0; i < hops; ++i) msg.packet.RecordOnPath(NodeId(i));
  return msg;
}

TEST(ShardProfilerTest, WireByteModelChargesEnvelopeAndDataPayload) {
  XMsg echo;
  echo.kind = XMsgKind::kEchoRequest;
  EXPECT_EQ(XMsgWireBytes(echo), 48u);
  echo.kind = XMsgKind::kEchoReply;
  EXPECT_EQ(XMsgWireBytes(echo), 48u);

  // Data copies add the header plus 4 bytes per destination and per hop.
  EXPECT_EQ(XMsgWireBytes(DataMsg(0, 0)), 48u + 32u);
  EXPECT_EQ(XMsgWireBytes(DataMsg(3, 0)), 48u + 32u + 12u);
  EXPECT_EQ(XMsgWireBytes(DataMsg(3, 2)), 48u + 32u + 12u + 8u);
}

TEST(ShardProfilerTest, CountInboundAccumulatesPerSourceAndPerRound) {
  ShardProfiler profiler(1, 4);
  const XMsg msg = DataMsg(2, 1);
  const std::uint64_t bytes = XMsgWireBytes(msg);
  profiler.CountInbound(0, msg);
  profiler.CountInbound(0, msg);
  profiler.CountInbound(3, msg);
  profiler.AddRound(/*horizon_us=*/1000, /*busy_ns=*/50, /*stall_ns=*/5,
                    /*events=*/7);
  profiler.CountInbound(2, msg);
  profiler.AddRound(2000, 60, 6, 8);

  EXPECT_EQ(profiler.in_msgs_by_src(),
            (std::vector<std::uint64_t>{2, 0, 1, 1}));
  EXPECT_EQ(profiler.in_bytes_by_src(),
            (std::vector<std::uint64_t>{2 * bytes, 0, bytes, bytes}));
  ASSERT_EQ(profiler.rounds().size(), 2u);
  EXPECT_EQ(profiler.rounds()[0].xmsgs_in, 3u);
  EXPECT_EQ(profiler.rounds()[0].xbytes_in, 3 * bytes);
  EXPECT_EQ(profiler.rounds()[0].events, 7u);
  EXPECT_EQ(profiler.rounds()[1].xmsgs_in, 1u);  // reset between rounds
  EXPECT_EQ(profiler.rounds()[1].xbytes_in, bytes);
}

// Builds a small fleet of profilers with a known shape: shard s is busy
// (s + 1) * 1000 ns per round, everyone stalls 500 ns, and each shard
// receives one message per round from its left neighbour.
std::vector<std::unique_ptr<ShardProfiler>> MakeFleet(int shards,
                                                      int rounds) {
  std::vector<std::unique_ptr<ShardProfiler>> fleet;
  const XMsg msg = DataMsg(1, 0);
  for (int s = 0; s < shards; ++s) {
    fleet.push_back(std::make_unique<ShardProfiler>(s, shards));
    for (int r = 0; r < rounds; ++r) {
      fleet.back()->CountInbound((s + shards - 1) % shards, msg);
      fleet.back()->AddRound(1000 * (r + 1),
                             static_cast<std::uint64_t>(s + 1) * 1000, 500,
                             10);
    }
  }
  return fleet;
}

std::vector<const ShardProfiler*> Views(
    const std::vector<std::unique_ptr<ShardProfiler>>& fleet) {
  std::vector<const ShardProfiler*> views;
  for (const auto& profiler : fleet) views.push_back(profiler.get());
  return views;
}

TEST(ShardProfilerTest, MergeComputesTotalsImbalanceAndCriticalShard) {
  const auto fleet = MakeFleet(/*shards=*/4, /*rounds=*/8);
  const ShardProfile profile = MergeShardProfiles(Views(fleet), 250);

  EXPECT_EQ(profile.shards, 4);
  EXPECT_EQ(profile.rounds, 8u);
  EXPECT_EQ(profile.lookahead_us, 250);
  ASSERT_EQ(profile.shard_totals.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(profile.shard_totals[static_cast<std::size_t>(s)].busy_ns,
              static_cast<std::uint64_t>(s + 1) * 1000 * 8);
    EXPECT_EQ(profile.shard_totals[static_cast<std::size_t>(s)].stall_ns,
              500u * 8);
    EXPECT_EQ(profile.shard_totals[static_cast<std::size_t>(s)].events,
              80u);
  }
  // busy totals 8k/16k/24k/32k -> max 32k, mean 20k -> imbalance 1.6.
  EXPECT_NEAR(profile.imbalance, 1.6, 1e-9);

  // 8 rounds fold into at most 8 buckets; the busiest shard (3) is
  // critical everywhere in this shape.
  ASSERT_FALSE(profile.buckets.empty());
  ASSERT_LE(profile.buckets.size(),
            static_cast<std::size_t>(kMaxShardProfileBuckets));
  std::uint64_t covered = 0;
  for (const auto& bucket : profile.buckets) {
    EXPECT_EQ(bucket.critical_shard, 3);
    ASSERT_EQ(bucket.busy_ns.size(), 4u);
    ASSERT_EQ(bucket.stall_ns.size(), 4u);
    EXPECT_EQ(bucket.first_round, covered);
    covered = bucket.last_round + 1;
  }
  EXPECT_EQ(covered, profile.rounds);  // buckets tile [0, rounds)
}

TEST(ShardProfilerTest, MergeTruncatesToCommonRoundsAndBucketsLongRuns) {
  // Shard 1 closed one extra round; the merge keeps the common prefix.
  auto fleet = MakeFleet(2, 3);
  fleet[1]->AddRound(9000, 1, 1, 1);
  const ShardProfile profile = MergeShardProfiles(Views(fleet), 0);
  EXPECT_EQ(profile.rounds, 3u);

  // Far more rounds than buckets: the fold caps the bucket count.
  const auto long_fleet = MakeFleet(2, 5000);
  const ShardProfile long_profile = MergeShardProfiles(Views(long_fleet), 0);
  EXPECT_EQ(long_profile.buckets.size(),
            static_cast<std::size_t>(kMaxShardProfileBuckets));
  std::uint64_t covered = 0;
  std::uint64_t busy0 = 0;
  for (const auto& bucket : long_profile.buckets) {
    EXPECT_EQ(bucket.first_round, covered);
    covered = bucket.last_round + 1;
    busy0 += bucket.busy_ns[0];
  }
  EXPECT_EQ(covered, 5000u);
  // Bucket folding loses no time: per-shard bucket sums equal the totals.
  EXPECT_EQ(busy0, long_profile.shard_totals[0].busy_ns);
}

TEST(ShardProfilerTest, MatrixConservesTrafficBetweenRowsAndColumns) {
  const auto fleet = MakeFleet(4, 8);
  const ShardProfile profile = MergeShardProfiles(Views(fleet), 0);

  std::uint64_t total_in = 0;
  std::uint64_t total_out = 0;
  for (int s = 0; s < 4; ++s) {
    const auto& totals = profile.shard_totals[static_cast<std::size_t>(s)];
    std::uint64_t row_msgs = 0;
    std::uint64_t col_msgs = 0;
    std::uint64_t row_bytes = 0;
    std::uint64_t col_bytes = 0;
    for (int t = 0; t < 4; ++t) {
      row_msgs += profile.At(s, t).msgs;
      row_bytes += profile.At(s, t).bytes;
      col_msgs += profile.At(t, s).msgs;
      col_bytes += profile.At(t, s).bytes;
    }
    EXPECT_EQ(row_msgs, totals.msgs_out) << "shard " << s;
    EXPECT_EQ(row_bytes, totals.bytes_out) << "shard " << s;
    EXPECT_EQ(col_msgs, totals.msgs_in) << "shard " << s;
    EXPECT_EQ(col_bytes, totals.bytes_in) << "shard " << s;
    total_in += totals.msgs_in;
    total_out += totals.msgs_out;
    // The ring shape: one message per round from the left neighbour only.
    EXPECT_EQ(profile.At((s + 3) % 4, s).msgs, 8u);
    EXPECT_EQ(profile.At(s, s).msgs, 0u);
  }
  // Receiver-side accounting makes this an identity, not a measurement.
  EXPECT_EQ(total_in, total_out);
}

TEST(ShardProfilerTest, JsonRoundTripPreservesEveryField) {
  const auto fleet = MakeFleet(3, 10);
  const ShardProfile profile = MergeShardProfiles(Views(fleet), 500);

  std::ostringstream os;
  WriteShardProfileJson(os, profile);
  std::istringstream in(os.str());
  ShardProfile loaded;
  std::string error;
  ASSERT_TRUE(LoadShardProfileJson(in, &loaded, &error)) << error;

  EXPECT_EQ(loaded.shards, profile.shards);
  EXPECT_EQ(loaded.rounds, profile.rounds);
  EXPECT_EQ(loaded.lookahead_us, profile.lookahead_us);
  EXPECT_NEAR(loaded.imbalance, profile.imbalance, 1e-6);
  ASSERT_EQ(loaded.shard_totals.size(), profile.shard_totals.size());
  for (std::size_t s = 0; s < profile.shard_totals.size(); ++s) {
    EXPECT_EQ(loaded.shard_totals[s].busy_ns,
              profile.shard_totals[s].busy_ns);
    EXPECT_EQ(loaded.shard_totals[s].stall_ns,
              profile.shard_totals[s].stall_ns);
    EXPECT_EQ(loaded.shard_totals[s].events, profile.shard_totals[s].events);
    EXPECT_EQ(loaded.shard_totals[s].msgs_in,
              profile.shard_totals[s].msgs_in);
    EXPECT_EQ(loaded.shard_totals[s].bytes_in,
              profile.shard_totals[s].bytes_in);
    EXPECT_EQ(loaded.shard_totals[s].msgs_out,
              profile.shard_totals[s].msgs_out);
    EXPECT_EQ(loaded.shard_totals[s].bytes_out,
              profile.shard_totals[s].bytes_out);
  }
  ASSERT_EQ(loaded.matrix.size(), profile.matrix.size());
  for (std::size_t i = 0; i < profile.matrix.size(); ++i) {
    EXPECT_EQ(loaded.matrix[i].msgs, profile.matrix[i].msgs) << i;
    EXPECT_EQ(loaded.matrix[i].bytes, profile.matrix[i].bytes) << i;
  }
  ASSERT_EQ(loaded.buckets.size(), profile.buckets.size());
  for (std::size_t b = 0; b < profile.buckets.size(); ++b) {
    EXPECT_EQ(loaded.buckets[b].first_round, profile.buckets[b].first_round);
    EXPECT_EQ(loaded.buckets[b].last_round, profile.buckets[b].last_round);
    EXPECT_EQ(loaded.buckets[b].horizon_us, profile.buckets[b].horizon_us);
    EXPECT_EQ(loaded.buckets[b].critical_shard,
              profile.buckets[b].critical_shard);
    EXPECT_EQ(loaded.buckets[b].busy_ns, profile.buckets[b].busy_ns);
    EXPECT_EQ(loaded.buckets[b].stall_ns, profile.buckets[b].stall_ns);
  }
}

TEST(ShardProfilerTest, LoadRejectsWrongSchemaAndGarbage) {
  ShardProfile out;
  std::string error;

  std::istringstream wrong(
      "{\"schema\":\"dcrd-metrics-v1\",\"shards\":1,\"rounds\":0}");
  EXPECT_FALSE(LoadShardProfileJson(wrong, &out, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream garbage("this is not json");
  EXPECT_FALSE(LoadShardProfileJson(garbage, &out, &error));

  std::istringstream empty("");
  EXPECT_FALSE(LoadShardProfileJson(empty, &out, &error));
}

TEST(ShardProfilerTest, PrintRendersTotalsMatrixAndCriticalShards) {
  const auto fleet = MakeFleet(4, 8);
  const ShardProfile profile = MergeShardProfiles(Views(fleet), 250);

  std::ostringstream os;
  PrintShardProfile(os, profile);
  const std::string text = os.str();
  EXPECT_NE(text.find("4 shard(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("imbalance"), std::string::npos) << text;
  EXPECT_NE(text.find("1.600"), std::string::npos) << text;
  EXPECT_NE(text.find("src\\dst"), std::string::npos) << text;
  EXPECT_NE(text.find("critical shard per round bucket"), std::string::npos)
      << text;

  // A single-shard profile prints no matrix (nothing crosses a cut).
  const auto solo = MakeFleet(1, 4);
  const ShardProfile solo_profile = MergeShardProfiles(Views(solo), 0);
  std::ostringstream solo_os;
  PrintShardProfile(solo_os, solo_profile);
  EXPECT_EQ(solo_os.str().find("matrix"), std::string::npos)
      << solo_os.str();
}

}  // namespace
}  // namespace dcrd
