// Metrics registry: log-linear histogram bucket math and quantiles (pinned
// against sim/stats.h's scalar Quantile), counters, gauges, epoch series,
// and the JSON export.
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "sim/stats.h"

namespace dcrd {
namespace {

TEST(LogLinearHistogramTest, BucketIndexIsExactBelow32) {
  for (std::uint64_t v = 0; v < 32; ++v) {
    const int index = LogLinearHistogram::BucketIndex(v);
    EXPECT_EQ(index, static_cast<int>(v));
    EXPECT_EQ(LogLinearHistogram::BucketLo(index), v);
    EXPECT_EQ(LogLinearHistogram::BucketHi(index), v);
  }
}

TEST(LogLinearHistogramTest, BucketBoundsContainTheValue) {
  const std::uint64_t samples[] = {32,     33,    63,     64,        100,
                                  1023,   1024,  999999, 1u << 20,  (1u << 20) + 1,
                                  std::uint64_t{1} << 40};
  for (const std::uint64_t v : samples) {
    const int index = LogLinearHistogram::BucketIndex(v);
    EXPECT_GE(v, LogLinearHistogram::BucketLo(index)) << v;
    EXPECT_LE(v, LogLinearHistogram::BucketHi(index)) << v;
  }
}

TEST(LogLinearHistogramTest, RelativeBucketWidthIsAtMostOneThirtySecond) {
  for (const std::uint64_t v :
       {std::uint64_t{32}, std::uint64_t{1000}, std::uint64_t{123456789},
        std::uint64_t{1} << 50}) {
    const int index = LogLinearHistogram::BucketIndex(v);
    const std::uint64_t lo = LogLinearHistogram::BucketLo(index);
    const std::uint64_t hi = LogLinearHistogram::BucketHi(index);
    EXPECT_LE(hi - lo + 1, lo / 32 + 1) << v;
  }
}

TEST(LogLinearHistogramTest, TracksCountSumMinMax) {
  LogLinearHistogram h;
  h.Record(5);
  h.Record(10);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 18u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 10u);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(LogLinearHistogramTest, NegativeValuesClampToZero) {
  LogLinearHistogram h;
  h.Record(-7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.CountAt(0), 1u);
}

TEST(LogLinearHistogramTest, QuantilesExactForSmallValues) {
  // Values < 32 land in exact unit buckets, so quantiles must be exact.
  LogLinearHistogram h;
  for (int v = 1; v <= 20; ++v) h.Record(v);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 10u);
  EXPECT_EQ(h.ValueAtQuantile(0.95), 19u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 20u);
}

TEST(LogLinearHistogramTest, QuantilesAgreeWithScalarQuantile) {
  // Same nearest-rank rule as stats.cc's Quantile; on wide buckets the
  // histogram may err by at most half a bucket width (~1.6% relative).
  LogLinearHistogram h;
  std::vector<double> scalar;
  std::uint64_t v = 3;
  for (int i = 0; i < 1000; ++i) {
    v = v * 1664525 + 1013904223;  // deterministic LCG spread
    const std::uint64_t sample = v % 1000000;
    h.Record(static_cast<std::int64_t>(sample));
    scalar.push_back(static_cast<double>(sample));
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = Quantile(scalar, q);
    const double approx = static_cast<double>(h.ValueAtQuantile(q));
    EXPECT_NEAR(approx, exact, exact / 32.0 + 1.0) << "q=" << q;
  }
}

TEST(LogLinearHistogramTest, SingleSampleReportsItselfAtEveryQuantile) {
  LogLinearHistogram h;
  h.Record(123456);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    // Midpoint clamps into [min, max] == [123456, 123456].
    EXPECT_EQ(h.ValueAtQuantile(q), 123456u) << q;
  }
}

TEST(MetricsRegistryTest, OwnedAndExternalCountersAndGauges) {
  MetricsRegistry registry;
  std::uint64_t* owned = registry.AddCounter("test.owned");
  std::uint64_t external = 7;
  registry.RegisterCounter("test.external", &external);
  std::uint64_t gauge_value = 3;
  registry.RegisterGauge("test.gauge", [&gauge_value] { return gauge_value; });

  *owned += 2;
  registry.SnapshotEpoch(SimTime::FromMicros(1000));
  *owned += 3;
  external = 11;
  gauge_value = 9;
  registry.SnapshotEpoch(SimTime::FromMicros(2000));

  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"test.owned\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.external\": 11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.gauge\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t_us\": 1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t_us\": 2000"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, HistogramExportCarriesSummaryAndQuantiles) {
  MetricsRegistry registry;
  LogLinearHistogram* h = registry.AddHistogram("test.hist");
  for (int v = 1; v <= 10; ++v) h->Record(v);
  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 5"), std::string::npos) << json;
}

}  // namespace
}  // namespace dcrd
