#include "sim/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcrd {
namespace {

TEST(QuantileTest, KnownValues) {
  const std::vector<double> samples = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 1.0), 5.0);
}

TEST(QuantileTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, SingleSample) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.99), 7.0);
}

TEST(QuantileTest, NearestRankPinnedOnOneToHundred) {
  // Nearest-rank regression: p99 of 1..100 is sample #99 (rank ceil(99)-1),
  // NOT the maximum — the old floor(q*n) rule overshot whenever q*n was
  // integral. Pinned here and mirrored by LogLinearHistogram's quantiles.
  std::vector<double> samples;
  for (int v = 1; v <= 100; ++v) samples.push_back(v);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 0.999), 100.0);
  EXPECT_DOUBLE_EQ(Quantile(samples, 1.0), 100.0);
}

TEST(QuantileTest, DuplicatesAndTinyInputs) {
  EXPECT_DOUBLE_EQ(Quantile({4.0, 4.0, 4.0, 4.0}, 0.75), 4.0);
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, 0.5), 1.0);   // rank ceil(1)-1 = 0
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, 0.51), 2.0);  // rank ceil(1.02)-1
  EXPECT_DOUBLE_EQ(Quantile({9.0}, 0.5), 9.0);
}

TEST(QuantileTest, UniformSamplesMatchTheory) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 100'000; ++i) samples.push_back(rng.NextDouble());
  EXPECT_NEAR(Quantile(samples, 0.5), 0.5, 0.01);
  EXPECT_NEAR(Quantile(samples, 0.95), 0.95, 0.01);
}

TEST(MeanStdDevTest, HandComputed) {
  const std::vector<double> samples = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(samples), 5.0);
  EXPECT_NEAR(StdDev(samples), 2.1380899, 1e-6);
}

TEST(MeanStdDevTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({3.0}), 0.0);
}

TEST(HistogramTest, BucketsSamples) {
  const Histogram histogram =
      MakeHistogram({0.5, 1.5, 1.7, 2.5, -1.0, 10.0}, 0.0, 3.0, 3);
  ASSERT_EQ(histogram.buckets.size(), 3U);
  EXPECT_EQ(histogram.buckets[0], 1U);
  EXPECT_EQ(histogram.buckets[1], 2U);
  EXPECT_EQ(histogram.buckets[2], 1U);
  EXPECT_EQ(histogram.underflow, 1U);
  EXPECT_EQ(histogram.overflow, 1U);
  EXPECT_EQ(histogram.total(), 6U);
}

TEST(HistogramTest, CdfInterpolates) {
  const Histogram histogram = MakeHistogram({0.5, 1.5, 2.5, 3.5}, 0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(histogram.CdfAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(histogram.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(histogram.CdfAt(4.0), 1.0);
  // Mid-bucket: half of bucket [1,2)'s single sample.
  EXPECT_DOUBLE_EQ(histogram.CdfAt(1.5), 0.25 + 0.125);
}

TEST(HistogramTest, RenderContainsBucketsAndCounts) {
  const Histogram histogram = MakeHistogram({0.5, 0.6, 1.5}, 0.0, 2.0, 2);
  const std::string rendered = histogram.Render(10);
  EXPECT_NE(rendered.find("[0, 1) ########## 2"), std::string::npos);
  EXPECT_NE(rendered.find("[1, 2) ##### 1"), std::string::npos);
}

TEST(HistogramTest, EmptyCdfIsZero) {
  const Histogram histogram = MakeHistogram({}, 0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(histogram.CdfAt(0.5), 0.0);
}

}  // namespace
}  // namespace dcrd
