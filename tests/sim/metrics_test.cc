#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

struct Fixture {
  SubscriptionTable subscriptions;
  TopicId topic;

  Fixture() {
    topic = subscriptions.AddTopic(NodeId(0));
    subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
    subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(50));
  }

  Message MakeMessage(std::uint64_t id, SimTime at = SimTime::Zero()) {
    Message message;
    message.id = MessageId(id);
    message.topic = topic;
    message.publisher = NodeId(0);
    message.publish_time = at;
    return message;
  }
};

TEST(MetricsTest, CountsExpectedPairsPerMessage) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  metrics.OnPublished(f.MakeMessage(0));
  metrics.OnPublished(f.MakeMessage(1));
  const RunSummary summary = metrics.Summarize(0, 0);
  EXPECT_EQ(summary.messages_published, 2U);
  EXPECT_EQ(summary.expected_pairs, 4U);
  EXPECT_EQ(summary.delivered_pairs, 0U);
}

TEST(MetricsTest, OnTimeDeliveryCountsForBothRatios) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  const Message message = f.MakeMessage(0);
  metrics.OnPublished(message);
  metrics.OnDelivered(message, NodeId(1),
                      SimTime::Zero() + SimDuration::Millis(80));
  const RunSummary summary = metrics.Summarize(0, 0);
  EXPECT_EQ(summary.delivered_pairs, 1U);
  EXPECT_EQ(summary.qos_pairs, 1U);
  EXPECT_TRUE(summary.lateness_ratios.empty());
  EXPECT_DOUBLE_EQ(summary.delivery_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(summary.qos_ratio(), 0.5);
}

TEST(MetricsTest, LateDeliveryRecordsLateness) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  const Message message = f.MakeMessage(0);
  metrics.OnPublished(message);
  // Deadline for subscriber 2 is 50 ms; arrive at 75 ms -> ratio 1.5.
  metrics.OnDelivered(message, NodeId(2),
                      SimTime::Zero() + SimDuration::Millis(75));
  const RunSummary summary = metrics.Summarize(0, 0);
  EXPECT_EQ(summary.delivered_pairs, 1U);
  EXPECT_EQ(summary.qos_pairs, 0U);
  ASSERT_EQ(summary.lateness_ratios.size(), 1U);
  EXPECT_DOUBLE_EQ(summary.lateness_ratios[0], 1.5);
}

TEST(MetricsTest, ExactDeadlineCountsAsOnTime) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  const Message message = f.MakeMessage(0);
  metrics.OnPublished(message);
  metrics.OnDelivered(message, NodeId(2),
                      SimTime::Zero() + SimDuration::Millis(50));
  EXPECT_EQ(metrics.Summarize(0, 0).qos_pairs, 1U);
}

TEST(MetricsTest, DeadlineMeasuredFromPublishTime) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  const SimTime published = SimTime::FromMicros(5'000'000);
  const Message message = f.MakeMessage(0, published);
  metrics.OnPublished(message);
  metrics.OnDelivered(message, NodeId(2), published + SimDuration::Millis(40));
  EXPECT_EQ(metrics.Summarize(0, 0).qos_pairs, 1U);
}

TEST(MetricsTest, DuplicatesIgnored) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  const Message message = f.MakeMessage(0);
  metrics.OnPublished(message);
  metrics.OnDelivered(message, NodeId(1),
                      SimTime::Zero() + SimDuration::Millis(10));
  metrics.OnDelivered(message, NodeId(1),
                      SimTime::Zero() + SimDuration::Millis(20));
  const RunSummary summary = metrics.Summarize(0, 0);
  EXPECT_EQ(summary.delivered_pairs, 1U);
  EXPECT_EQ(summary.duplicate_deliveries, 1U);
}

TEST(MetricsTest, UnknownMessageCountsAsDuplicate) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  metrics.OnDelivered(f.MakeMessage(99), NodeId(1), SimTime::Zero());
  EXPECT_EQ(metrics.Summarize(0, 0).duplicate_deliveries, 1U);
}

TEST(MetricsTest, PacketsPerSubscriberUsesDataTransmissions) {
  Fixture f;
  MetricsCollector metrics(f.subscriptions);
  metrics.OnPublished(f.MakeMessage(0));  // 2 pairs
  const RunSummary summary = metrics.Summarize(/*data=*/6, /*ack=*/9);
  EXPECT_DOUBLE_EQ(summary.packets_per_subscriber(), 3.0);
  EXPECT_EQ(summary.ack_transmissions, 9U);
}

TEST(MetricsTest, AbsorbPoolsCounts) {
  RunSummary a, b;
  a.expected_pairs = 10;
  a.delivered_pairs = 9;
  a.qos_pairs = 8;
  a.data_transmissions = 30;
  a.lateness_ratios = {1.2};
  b.expected_pairs = 10;
  b.delivered_pairs = 10;
  b.qos_pairs = 10;
  b.data_transmissions = 10;
  b.lateness_ratios = {1.5, 2.0};
  a.Absorb(b);
  EXPECT_EQ(a.expected_pairs, 20U);
  EXPECT_DOUBLE_EQ(a.delivery_ratio(), 0.95);
  EXPECT_DOUBLE_EQ(a.qos_ratio(), 0.9);
  EXPECT_DOUBLE_EQ(a.packets_per_subscriber(), 2.0);
  EXPECT_EQ(a.lateness_ratios.size(), 3U);
}

TEST(MetricsTest, EmptySummaryRatiosAreBenign) {
  const RunSummary summary;
  EXPECT_DOUBLE_EQ(summary.delivery_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(summary.qos_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(summary.packets_per_subscriber(), 0.0);
}

}  // namespace
}  // namespace dcrd
