#include "sim/engine.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

ScenarioConfig SmallScenario(RouterKind router) {
  ScenarioConfig config;
  config.router = router;
  config.node_count = 10;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 4;
  config.topic_count = 3;
  config.sim_time = SimDuration::Seconds(30);
  config.seed = 5;
  return config;
}

TEST(EngineTest, PerfectNetworkDeliversEverythingOnTime) {
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kRTree, RouterKind::kDTree,
        RouterKind::kOracle, RouterKind::kMultipath}) {
    ScenarioConfig config = SmallScenario(router);
    config.failure_probability = 0.0;
    config.loss_rate = 0.0;
    const RunSummary summary = RunScenario(config);
    EXPECT_GT(summary.messages_published, 0U) << RouterName(router);
    EXPECT_DOUBLE_EQ(summary.delivery_ratio(), 1.0) << RouterName(router);
    EXPECT_DOUBLE_EQ(summary.qos_ratio(), 1.0) << RouterName(router);
  }
}

TEST(EngineTest, PublishCadenceMatchesConfig) {
  ScenarioConfig config = SmallScenario(RouterKind::kDTree);
  config.failure_probability = 0.0;
  config.loss_rate = 0.0;
  const RunSummary summary = RunScenario(config);
  // 3 topics x 1 pkt/s x 30 s; the random phase makes it 30 or 31 each.
  EXPECT_GE(summary.messages_published, 90U);
  EXPECT_LE(summary.messages_published, 93U);
}

TEST(EngineTest, DeterministicForSeed) {
  const ScenarioConfig config = SmallScenario(RouterKind::kDcrd);
  ScenarioConfig with_failures = config;
  with_failures.failure_probability = 0.06;
  const RunSummary a = RunScenario(with_failures);
  const RunSummary b = RunScenario(with_failures);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.qos_pairs, b.qos_pairs);
  EXPECT_EQ(a.data_transmissions, b.data_transmissions);
  EXPECT_EQ(a.lateness_ratios, b.lateness_ratios);
}

TEST(EngineTest, SeedChangesOutcome) {
  ScenarioConfig a = SmallScenario(RouterKind::kDcrd);
  a.failure_probability = 0.06;
  ScenarioConfig b = a;
  b.seed = 6;
  EXPECT_NE(RunScenario(a).data_transmissions,
            RunScenario(b).data_transmissions);
}

TEST(EngineTest, MultipathSendsMoreTrafficThanTree) {
  ScenarioConfig tree = SmallScenario(RouterKind::kDTree);
  ScenarioConfig multipath = SmallScenario(RouterKind::kMultipath);
  tree.failure_probability = multipath.failure_probability = 0.0;
  tree.loss_rate = multipath.loss_rate = 0.0;
  EXPECT_GT(RunScenario(multipath).packets_per_subscriber(),
            RunScenario(tree).packets_per_subscriber());
}

TEST(EngineTest, FullMeshRTreeSendsOnePacketPerSubscriber) {
  // The paper's calibration point: with direct links everywhere, R-Tree's
  // shortest-hop tree is the star of direct edges.
  ScenarioConfig config = SmallScenario(RouterKind::kRTree);
  config.topology = TopologyKind::kFullMesh;
  config.failure_probability = 0.0;
  config.loss_rate = 0.0;
  const RunSummary summary = RunScenario(config);
  EXPECT_DOUBLE_EQ(summary.packets_per_subscriber(), 1.0);
}

TEST(EngineTest, FailuresDegradeTreesMoreThanDcrd) {
  ScenarioConfig dcrd = SmallScenario(RouterKind::kDcrd);
  ScenarioConfig dtree = SmallScenario(RouterKind::kDTree);
  dcrd.failure_probability = dtree.failure_probability = 0.08;
  dcrd.sim_time = dtree.sim_time = SimDuration::Seconds(120);
  const RunSummary dcrd_summary = RunScenario(dcrd);
  const RunSummary dtree_summary = RunScenario(dtree);
  EXPECT_GT(dcrd_summary.delivery_ratio(), dtree_summary.delivery_ratio());
}

TEST(EngineTest, AcksAreCountedSeparately) {
  ScenarioConfig config = SmallScenario(RouterKind::kDcrd);
  config.failure_probability = 0.0;
  config.loss_rate = 0.0;
  const RunSummary summary = RunScenario(config);
  // Hop-by-hop ACKs: one per successful data transmission here.
  EXPECT_EQ(summary.ack_transmissions, summary.data_transmissions);
}

}  // namespace
}  // namespace dcrd
