#include "sim/invariant_checker.h"

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "sim/metrics.h"

namespace dcrd {
namespace {

struct FakeRouter final : public Router {
  void Rebuild(const MonitoredView&) override {}
  void Publish(const Message&) override {}
  [[nodiscard]] std::string_view name() const override { return "Fake"; }
  TransportStats stats;
  std::size_t episodes = 0;
  [[nodiscard]] TransportStats transport_stats() const override {
    return stats;
  }
  [[nodiscard]] std::size_t open_episodes() const override {
    return episodes;
  }
};

Message TestMessage(std::uint64_t id = 1) {
  Message message;
  message.id = MessageId(id);
  message.topic = TopicId(0);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::Zero();
  return message;
}

struct Fixture {
  Graph graph = Line(3, SimDuration::Millis(10));
  Scheduler scheduler;
  FailureSchedule failures{1, 0.0};
  OverlayNetwork network{graph, scheduler, failures, 0.0, Rng(1)};
  SubscriptionTable subscriptions;
  MetricsCollector metrics{subscriptions};

  Fixture() {
    subscriptions.AddTopic(NodeId(0));
    subscriptions.AddSubscription(TopicId(0), NodeId(2),
                                  SimDuration::Millis(100));
  }
};

TEST(InvariantCheckerTest, CleanArrivalsRaiseNoViolation) {
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  Packet packet(TestMessage(), {NodeId(2)});
  packet.RecordOnPath(NodeId(0));
  checker.OnCopyArrival(1, NodeId(1), NodeId(0), packet, /*handed_up=*/true);
  packet.RecordOnPath(NodeId(1));
  checker.OnCopyArrival(2, NodeId(2), NodeId(1), packet, /*handed_up=*/true);
  EXPECT_EQ(checker.violation_count(), 0U);
  EXPECT_EQ(checker.copies_observed(), 2U);
}

TEST(InvariantCheckerTest, LegalUpstreamRerouteIsNotALoop) {
  // Path [0, 1]: node 1 sends back up to node 0 — Algorithm 2's upstream
  // reroute. 0 is on the path but is 1's original upstream: legal.
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  Packet packet(TestMessage(), {NodeId(2)});
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(1));
  checker.OnCopyArrival(1, NodeId(0), NodeId(1), packet, /*handed_up=*/true);
  EXPECT_EQ(checker.violation_count(), 0U);
}

TEST(InvariantCheckerTest, RevisitingNonUpstreamNodeIsALoop) {
  // Path [0, 1, 2]: 2 sending to 0 revisits a path node that is NOT its
  // upstream (2's upstream is 1) — a forwarding loop.
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  Packet packet(TestMessage(), {NodeId(2)});
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(1));
  packet.RecordOnPath(NodeId(2));
  checker.OnCopyArrival(1, NodeId(0), NodeId(2), packet, /*handed_up=*/true);
  EXPECT_EQ(checker.violation_count(), 1U);
  ASSERT_EQ(checker.violations().size(), 1U);
  EXPECT_NE(checker.violations()[0].find("routing loop"), std::string::npos);
}

TEST(InvariantCheckerTest, DoubleHandUpOfOneCopyIsAViolation) {
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  Packet packet(TestMessage(), {NodeId(2)});
  packet.RecordOnPath(NodeId(0));
  checker.OnCopyArrival(9, NodeId(1), NodeId(0), packet, /*handed_up=*/true);
  // Duplicate arrival correctly suppressed by the transport: fine.
  checker.OnCopyArrival(9, NodeId(1), NodeId(0), packet, /*handed_up=*/false);
  EXPECT_EQ(checker.violation_count(), 0U);
  // The same copy handed up a second time (e.g. dedup state lost): caught.
  checker.OnCopyArrival(9, NodeId(1), NodeId(0), packet, /*handed_up=*/true);
  EXPECT_EQ(checker.violation_count(), 1U);
  EXPECT_NE(checker.violations()[0].find("twice"), std::string::npos);
}

TEST(InvariantCheckerTest, ConservationHoldsAfterRealTraffic) {
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  for (int i = 0; i < 5; ++i) {
    f.network.Transmit(NodeId(0), link, TrafficClass::kData, [] {});
  }
  f.scheduler.Run();
  checker.CheckEpoch();
  EXPECT_EQ(checker.violation_count(), 0U);
}

TEST(InvariantCheckerTest, PendingCopiesAfterDrainAreAViolation) {
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  FakeRouter router;
  router.stats.pending_copies = 3;
  router.episodes = 2;
  checker.CheckEndOfRun(router, SimTime::Zero());
  EXPECT_EQ(checker.violation_count(), 2U);  // pending copies + episodes
}

TEST(InvariantCheckerTest, GuaranteeViolationWhenCleanPathIgnored) {
  // Published, never delivered, no failures anywhere: with the guarantee
  // check on this must be flagged.
  Fixture f;
  InvariantCheckerConfig config;
  config.check_delivery_guarantee = true;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics, config);
  checker.OnPublished(TestMessage());
  FakeRouter router;
  checker.CheckEndOfRun(router, SimTime::Zero() + SimDuration::Seconds(60));
  EXPECT_EQ(checker.violation_count(), 1U);
  EXPECT_NE(checker.violations()[0].find("delivery guarantee"),
            std::string::npos);
}

TEST(InvariantCheckerTest, GuaranteeSatisfiedByDelivery) {
  Fixture f;
  InvariantCheckerConfig config;
  config.check_delivery_guarantee = true;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics, config);
  const Message message = TestMessage();
  checker.OnPublished(message);
  checker.OnDelivered(message, NodeId(2),
                      SimTime::Zero() + SimDuration::Millis(20));
  FakeRouter router;
  checker.CheckEndOfRun(router, SimTime::Zero() + SimDuration::Seconds(60));
  EXPECT_EQ(checker.violation_count(), 0U);
}

TEST(InvariantCheckerTest, NoGuaranteeViolationWhenPathNeverClean) {
  // All links down for the whole run: non-delivery is legitimate.
  Graph graph = Line(3, SimDuration::Millis(10));
  Scheduler scheduler;
  FailureSchedule failures(1, 1.0);  // always down
  OverlayNetwork network(graph, scheduler, failures, 0.0, Rng(1));
  SubscriptionTable subscriptions;
  subscriptions.AddTopic(NodeId(0));
  subscriptions.AddSubscription(TopicId(0), NodeId(2),
                                SimDuration::Millis(100));
  MetricsCollector metrics(subscriptions);
  InvariantCheckerConfig config;
  config.check_delivery_guarantee = true;
  SimInvariantChecker checker(network, subscriptions, metrics, config);
  checker.OnPublished(TestMessage());
  FakeRouter router;
  checker.CheckEndOfRun(router, SimTime::Zero() + SimDuration::Seconds(60));
  EXPECT_EQ(checker.violation_count(), 0U);
}

TEST(InvariantCheckerTest, DeliveriesForwardToWrappedSink) {
  Fixture f;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics);
  const Message message = TestMessage();
  f.metrics.OnPublished(message);
  checker.OnPublished(message);
  checker.OnDelivered(message, NodeId(2),
                      SimTime::Zero() + SimDuration::Millis(15));
  const RunSummary summary = f.metrics.Summarize(0, 0);
  EXPECT_EQ(summary.delivered_pairs, 1U);
}

TEST(InvariantCheckerTest, RecordingStopsAtMaxButCountContinues) {
  Fixture f;
  InvariantCheckerConfig config;
  config.max_recorded = 2;
  SimInvariantChecker checker(f.network, f.subscriptions, f.metrics, config);
  Packet packet(TestMessage(), {NodeId(2)});
  packet.RecordOnPath(NodeId(0));
  for (std::uint64_t copy = 1; copy <= 5; ++copy) {
    checker.OnCopyArrival(7, NodeId(1), NodeId(0), packet, /*handed_up=*/true);
  }
  // First call is legitimate; the four repeats are double hand-ups.
  EXPECT_EQ(checker.violation_count(), 4U);
  EXPECT_EQ(checker.violations().size(), 2U);
}

}  // namespace
}  // namespace dcrd
