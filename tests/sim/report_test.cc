#include "sim/report.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

SweepResult SampleSweep() {
  SweepResult sweep;
  sweep.title = "sample";
  sweep.x_label = "Pf";
  sweep.routers = {RouterKind::kDcrd, RouterKind::kRTree};
  for (const double x : {0.0, 0.1}) {
    SweepPoint point;
    point.x = x;
    for (std::size_t r = 0; r < 2; ++r) {
      RunSummary summary;
      summary.expected_pairs = 100;
      summary.delivered_pairs = 90 - static_cast<std::uint64_t>(x * 100);
      summary.qos_pairs = summary.delivered_pairs - 5;
      summary.data_transmissions = 200;
      point.per_router.push_back(summary);
    }
    sweep.points.push_back(point);
  }
  return sweep;
}

TEST(ReportTest, SweepCsvHeaderNamesRoutersAndMetrics) {
  std::ostringstream os;
  WriteSweepCsv(os, SampleSweep());
  std::string header;
  std::istringstream lines(os.str());
  std::getline(lines, header);
  EXPECT_EQ(header,
            "x,dcrd_delivery,dcrd_qos,dcrd_pkts_per_sub,"
            "rtree_delivery,rtree_qos,rtree_pkts_per_sub");
}

TEST(ReportTest, SweepCsvRowsCarryValues) {
  std::ostringstream os;
  WriteSweepCsv(os, SampleSweep());
  std::istringstream lines(os.str());
  std::string line;
  std::getline(lines, line);  // header
  std::getline(lines, line);
  EXPECT_EQ(line, "0,0.9,0.85,2,0.9,0.85,2");
  std::getline(lines, line);
  EXPECT_EQ(line, "0.1,0.8,0.75,2,0.8,0.75,2");
}

TEST(ReportTest, LatenessCdfCsv) {
  RunSummary summary;
  summary.lateness_ratios = {1.2, 1.4, 2.0};
  std::ostringstream os;
  WriteLatenessCdfCsv(os, summary, {1.0, 1.5, 2.5});
  std::istringstream lines(os.str());
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "x,cdf");
  std::getline(lines, line);
  EXPECT_EQ(line, "1,0");
  std::getline(lines, line);
  EXPECT_EQ(line, "1.5,0.666667");
  std::getline(lines, line);
  EXPECT_EQ(line, "2.5,1");
}

TEST(ReportTest, SaveSweepCsvWritesFile) {
  const std::string directory =
      (std::filesystem::temp_directory_path() / "dcrd_report_test").string();
  const std::string path = SaveSweepCsv(directory, "sweep", SampleSweep());
  ASSERT_FALSE(path.empty());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_NE(header.find("dcrd_delivery"), std::string::npos);
  std::filesystem::remove_all(directory);
}

TEST(ReportTest, SaveSweepCsvReportsFailure) {
  // A directory path that cannot be created (a file is in the way).
  const auto blocker =
      std::filesystem::temp_directory_path() / "dcrd_report_blocker";
  std::ofstream(blocker).put('x');
  const std::string path =
      SaveSweepCsv(blocker.string(), "sweep", SampleSweep());
  EXPECT_TRUE(path.empty());
  std::filesystem::remove(blocker);
}

}  // namespace
}  // namespace dcrd
