#include "sim/workload.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.node_count = 20;
  config.topic_count = 10;
  config.qos_factor = 3.0;
  return config;
}

TEST(WorkloadTest, CreatesConfiguredTopicCount) {
  Rng topo_rng(1), rng(2);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  const SubscriptionTable table = GenerateWorkload(graph, BaseConfig(), rng);
  EXPECT_EQ(table.topic_count(), 10U);
}

TEST(WorkloadTest, PublishersAreDistinctNodes) {
  Rng topo_rng(1), rng(2);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  const SubscriptionTable table = GenerateWorkload(graph, BaseConfig(), rng);
  std::set<NodeId> publishers;
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    publishers.insert(
        table.publisher(TopicId(static_cast<TopicId::underlying_type>(t))));
  }
  EXPECT_EQ(publishers.size(), 10U);
}

TEST(WorkloadTest, EveryTopicHasSubscribers) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng topo_rng(seed), rng(seed + 100);
    const Graph graph = RandomConnected(20, 6, topo_rng);
    const SubscriptionTable table = GenerateWorkload(graph, BaseConfig(), rng);
    for (std::size_t t = 0; t < table.topic_count(); ++t) {
      const TopicId topic(static_cast<TopicId::underlying_type>(t));
      EXPECT_FALSE(table.subscriptions(topic).empty()) << "seed " << seed;
    }
  }
}

TEST(WorkloadTest, PublisherNeverSubscribesToOwnTopic) {
  Rng topo_rng(3), rng(4);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  const SubscriptionTable table = GenerateWorkload(graph, BaseConfig(), rng);
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    EXPECT_FALSE(table.IsSubscribed(topic, table.publisher(topic)));
  }
}

TEST(WorkloadTest, DeadlineIsFactorTimesShortestPath) {
  Rng topo_rng(5), rng(6);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = BaseConfig();
  config.qos_factor = 2.5;
  const SubscriptionTable table = GenerateWorkload(graph, config, rng);
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    const PathTree tree = ShortestDelayTree(graph, table.publisher(topic));
    for (const Subscription& sub : table.subscriptions(topic)) {
      const double shortest_ms =
          tree.distance[sub.subscriber.underlying()].millis();
      EXPECT_NEAR(sub.deadline.millis(), shortest_ms * 2.5, 0.001);
    }
  }
}

TEST(WorkloadTest, SubscriptionDensityWithinPsRange) {
  // Across many topics the per-topic subscription fraction must stay in a
  // band consistent with Ps in [0.2, 0.6] (19 eligible nodes per topic).
  Rng topo_rng(7), rng(8);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = BaseConfig();
  std::size_t total = 0;
  const int rounds = 30;
  for (int round = 0; round < rounds; ++round) {
    const SubscriptionTable table = GenerateWorkload(graph, config, rng);
    for (std::size_t t = 0; t < table.topic_count(); ++t) {
      total += table
                   .subscriptions(TopicId(static_cast<TopicId::underlying_type>(t)))
                   .size();
    }
  }
  const double mean_fraction =
      static_cast<double>(total) / (rounds * 10) / 19.0;
  EXPECT_GT(mean_fraction, 0.3);  // E[Ps] = 0.4
  EXPECT_LT(mean_fraction, 0.5);
}

TEST(WorkloadTest, DeterministicForSeed) {
  Rng topo_rng_a(9), topo_rng_b(9);
  const Graph a_graph = RandomConnected(20, 6, topo_rng_a);
  const Graph b_graph = RandomConnected(20, 6, topo_rng_b);
  Rng a_rng(10), b_rng(10);
  const SubscriptionTable a = GenerateWorkload(a_graph, BaseConfig(), a_rng);
  const SubscriptionTable b = GenerateWorkload(b_graph, BaseConfig(), b_rng);
  ASSERT_EQ(a.topic_count(), b.topic_count());
  for (std::size_t t = 0; t < a.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    EXPECT_EQ(a.publisher(topic), b.publisher(topic));
    EXPECT_EQ(a.SubscriberNodes(topic), b.SubscriberNodes(topic));
  }
}

TEST(WorkloadDeathTest, MorePublishersThanNodesRejected) {
  Rng topo_rng(1), rng(2);
  const Graph graph = RandomConnected(5, 3, topo_rng);
  ScenarioConfig config = BaseConfig();
  config.node_count = 5;
  config.topic_count = 6;
  EXPECT_DEATH((void)GenerateWorkload(graph, config, rng),
               "more publishers than broker nodes");
}

}  // namespace
}  // namespace dcrd
