// Engine-level behaviour of the extension knobs: jitter, heterogeneity,
// node failures, queuing, persistence and ordering policies all running
// through RunScenario.
#include <gtest/gtest.h>

#include "sim/engine.h"

namespace dcrd {
namespace {

ScenarioConfig Base(RouterKind router) {
  ScenarioConfig config;
  config.router = router;
  config.node_count = 12;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 5;
  config.topic_count = 3;
  config.sim_time = SimDuration::Seconds(40);
  config.seed = 9;
  return config;
}

TEST(EngineExtensionsTest, JitterPreservesDeliveryLoosensDelays) {
  ScenarioConfig crisp = Base(RouterKind::kDcrd);
  crisp.failure_probability = 0.0;
  crisp.loss_rate = 0.0;
  ScenarioConfig jittery = crisp;
  jittery.delay_jitter = 0.2;
  const RunSummary crisp_summary = RunScenario(crisp);
  const RunSummary jitter_summary = RunScenario(jittery);
  EXPECT_DOUBLE_EQ(jitter_summary.delivery_ratio(), 1.0);
  // Deadlines are 3x shortest path; ±20% jitter cannot break them.
  EXPECT_GT(jitter_summary.qos_ratio(), 0.999);
  // But the delay distribution must actually differ.
  EXPECT_NE(crisp_summary.delay_ms_samples, jitter_summary.delay_ms_samples);
}

TEST(EngineExtensionsTest, HeterogeneityChangesOutcomesDeterministically) {
  ScenarioConfig uniform = Base(RouterKind::kDcrd);
  uniform.failure_probability = 0.08;
  ScenarioConfig heterogeneous = uniform;
  heterogeneous.failure_heterogeneity = 1.5;
  const RunSummary a = RunScenario(heterogeneous);
  const RunSummary b = RunScenario(heterogeneous);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.data_transmissions, b.data_transmissions);
  EXPECT_NE(RunScenario(uniform).data_transmissions, a.data_transmissions);
}

TEST(EngineExtensionsTest, NodeFailuresHurtEveryRouter) {
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kDTree, RouterKind::kOracle}) {
    ScenarioConfig clean = Base(router);
    clean.failure_probability = 0.0;
    clean.loss_rate = 0.0;
    ScenarioConfig faulty = clean;
    faulty.node_failure_probability = 0.05;
    faulty.node_outage_epochs = 3;
    EXPECT_LT(RunScenario(faulty).delivery_ratio(),
              RunScenario(clean).delivery_ratio())
        << RouterName(router);
  }
}

TEST(EngineExtensionsTest, QueuingDelaysShowUpInDelaySamples) {
  ScenarioConfig unqueued = Base(RouterKind::kDTree);
  unqueued.failure_probability = 0.0;
  unqueued.loss_rate = 0.0;
  unqueued.publish_interval = SimDuration::FromSecondsF(0.05);  // 20 pkts/s
  ScenarioConfig queued = unqueued;
  queued.link_serialization = SimDuration::Millis(10);
  const RunSummary fast = RunScenario(unqueued);
  const RunSummary slow = RunScenario(queued);
  double fast_sum = 0, slow_sum = 0;
  for (const double d : fast.delay_ms_samples) fast_sum += d;
  for (const double d : slow.delay_ms_samples) slow_sum += d;
  ASSERT_FALSE(fast.delay_ms_samples.empty());
  ASSERT_FALSE(slow.delay_ms_samples.empty());
  EXPECT_GT(slow_sum / slow.delay_ms_samples.size(),
            fast_sum / fast.delay_ms_samples.size());
}

TEST(EngineExtensionsTest, PersistenceNeverLowersDelivery) {
  ScenarioConfig off = Base(RouterKind::kDcrd);
  off.degree = 2;  // ring: partitions actually happen
  off.failure_probability = 0.10;
  off.link_outage_epochs = 5;
  ScenarioConfig on = off;
  on.dcrd_persistence = true;
  const RunSummary off_summary = RunScenario(off);
  const RunSummary on_summary = RunScenario(on);
  EXPECT_GE(on_summary.delivery_ratio(), off_summary.delivery_ratio());
  EXPECT_LT(off_summary.delivery_ratio(), 1.0);  // the knob had work to do
}

TEST(EngineExtensionsTest, OrderingPoliciesRunAndDiffer) {
  ScenarioConfig theorem = Base(RouterKind::kDcrd);
  theorem.failure_probability = 0.10;
  theorem.failure_heterogeneity = 1.5;
  ScenarioConfig reliability = theorem;
  reliability.dcrd_ordering = OrderingPolicy::kReliabilityFirst;
  const RunSummary a = RunScenario(theorem);
  const RunSummary b = RunScenario(reliability);
  EXPECT_NE(a.data_transmissions, b.data_transmissions);
  EXPECT_GE(a.qos_ratio() + 1e-9, b.qos_ratio());
}

TEST(EngineExtensionsTest, MultipathPathCountScalesTraffic) {
  ScenarioConfig two = Base(RouterKind::kMultipath);
  two.failure_probability = 0.0;
  two.loss_rate = 0.0;
  ScenarioConfig three = two;
  three.multipath_path_count = 3;
  EXPECT_GT(RunScenario(three).packets_per_subscriber(),
            RunScenario(two).packets_per_subscriber());
}

}  // namespace
}  // namespace dcrd
