#include "sim/bench_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

BenchRecord SampleRecord(const std::string& name) {
  BenchRecord record;
  record.name = name;
  record.git = "v1-2-gabc123";
  record.utc = "2026-08-05T00:00:00Z";
  record.jobs = 4;
  record.cells = 60;
  record.wall_seconds = 12.5;
  record.cells_per_second = 4.8;
  record.cell_seconds = {0.5, 0.25};
  return record;
}

std::string Render(const BenchRecord& record) {
  std::ostringstream os;
  WriteBenchRecordJson(os, record);
  return os.str();
}

class TempFile {
 public:
  TempFile() : path_(testing::TempDir() + "bench_json_test.json") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

 private:
  std::string path_;
};

TEST(BenchJsonTest, RecordCarriesAllFields) {
  const std::string json = Render(SampleRecord("fig5"));
  EXPECT_NE(json.find("\"name\": \"fig5\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"git\": \"v1-2-gabc123\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"cells\": 60"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"cells_per_second\": 4.8"), std::string::npos);
  EXPECT_NE(json.find("\"cell_seconds\": [0.5, 0.25]"), std::string::npos);
}

TEST(BenchJsonTest, EscapesQuotesAndBackslashes) {
  BenchRecord record = SampleRecord("a\"b\\c");
  const std::string json = Render(record);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos) << json;
}

TEST(BenchJsonTest, AppendCreatesArrayThenGrowsIt) {
  TempFile file;
  ASSERT_TRUE(AppendBenchRecord(file.path(), SampleRecord("first")));
  std::string contents = file.contents();
  EXPECT_EQ(contents.front(), '[');
  EXPECT_NE(contents.find("\"first\""), std::string::npos);
  EXPECT_EQ(contents.find("\"second\""), std::string::npos);

  ASSERT_TRUE(AppendBenchRecord(file.path(), SampleRecord("second")));
  contents = file.contents();
  EXPECT_NE(contents.find("\"first\""), std::string::npos);
  EXPECT_NE(contents.find("\"second\""), std::string::npos);
  // Still one array: exactly one opening and one closing bracket outside
  // the numeric cell_seconds arrays.
  EXPECT_EQ(contents.front(), '[');
  EXPECT_EQ(contents.back(), '\n');
  const auto records = [&] {
    std::size_t count = 0, pos = 0;
    while ((pos = contents.find("\"name\"", pos)) != std::string::npos) {
      ++count;
      pos += 6;
    }
    return count;
  }();
  EXPECT_EQ(records, 2U);
}

TEST(BenchJsonTest, RefusesNonArrayFile) {
  TempFile file;
  {
    std::ofstream out(file.path());
    out << "not json at all";
  }
  EXPECT_FALSE(AppendBenchRecord(file.path(), SampleRecord("x")));
  EXPECT_EQ(file.contents(), "not json at all");
}

TEST(BenchJsonTest, MakeBenchRecordDerivesThroughput) {
  SweepRunStats stats;
  stats.jobs = 8;
  stats.cells = 40;
  stats.wall_seconds = 10.0;
  stats.cell_seconds = {1.0, 2.0};
  const BenchRecord record = MakeBenchRecord("sweep", stats);
  EXPECT_EQ(record.name, "sweep");
  EXPECT_EQ(record.jobs, 8);
  EXPECT_EQ(record.cells, 40U);
  EXPECT_DOUBLE_EQ(record.cells_per_second, 4.0);
  EXPECT_FALSE(record.git.empty());
  EXPECT_FALSE(record.utc.empty());
}

}  // namespace
}  // namespace dcrd
