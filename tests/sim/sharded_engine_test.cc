// Sharded-engine equivalence: `shards = N` must be *bit-identical* to the
// classic single-threaded engine on every figure-style scenario — same
// delivered pairs, same transmission counts, same delay samples — because
// the shard count is an execution detail, never a model parameter
// (DESIGN.md §12). Each test runs the same config at 1, 2 and 8 shards and
// compares every RunSummary field, including the full sample vectors.
//
// The adversarial-partition tests re-run with a round-robin owner map that
// puts essentially every edge across a shard boundary, proving the
// *partition choice* is result-neutral too (it only changes wall clock).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "graph/partition.h"
#include "obs/shard_profiler.h"
#include "obs/trace_export.h"
#include "obs/trace_record.h"
#include "sim/engine.h"

namespace dcrd {
namespace {

// Field-by-field equality; every divergence names the field.
void ExpectIdentical(const RunSummary& base, const RunSummary& other,
                     const std::string& label) {
  EXPECT_EQ(base.expected_pairs, other.expected_pairs) << label;
  EXPECT_EQ(base.delivered_pairs, other.delivered_pairs) << label;
  EXPECT_EQ(base.qos_pairs, other.qos_pairs) << label;
  EXPECT_EQ(base.duplicate_deliveries, other.duplicate_deliveries) << label;
  EXPECT_EQ(base.data_transmissions, other.data_transmissions) << label;
  EXPECT_EQ(base.ack_transmissions, other.ack_transmissions) << label;
  EXPECT_EQ(base.control_transmissions, other.control_transmissions) << label;
  EXPECT_EQ(base.messages_published, other.messages_published) << label;
  EXPECT_EQ(base.retransmissions, other.retransmissions) << label;
  EXPECT_EQ(base.spurious_retransmissions, other.spurious_retransmissions)
      << label;
  EXPECT_EQ(base.rtt_samples, other.rtt_samples) << label;
  EXPECT_EQ(base.broker_crashes, other.broker_crashes) << label;
  EXPECT_EQ(base.broker_restarts, other.broker_restarts) << label;
  EXPECT_EQ(base.dropped_crash, other.dropped_crash) << label;
  EXPECT_EQ(base.crash_copies_killed, other.crash_copies_killed) << label;
  EXPECT_EQ(base.peer_deaths, other.peer_deaths) << label;
  EXPECT_EQ(base.peer_probes, other.peer_probes) << label;
  EXPECT_EQ(base.peer_revivals, other.peer_revivals) << label;
  EXPECT_EQ(base.resyncs_started, other.resyncs_started) << label;
  EXPECT_EQ(base.resyncs_completed, other.resyncs_completed) << label;
  EXPECT_EQ(base.total_resync_time_us, other.total_resync_time_us) << label;
  EXPECT_EQ(base.max_resync_time_us, other.max_resync_time_us) << label;
  EXPECT_EQ(base.crash_excused_duplicates, other.crash_excused_duplicates)
      << label;
  EXPECT_EQ(base.invariant_violation_count, other.invariant_violation_count)
      << label;
  EXPECT_EQ(base.invariant_violations, other.invariant_violations) << label;
  EXPECT_EQ(base.lateness_ratios, other.lateness_ratios) << label;
  EXPECT_EQ(base.delay_ms_samples, other.delay_ms_samples) << label;
}

void ExpectShardInvariant(ScenarioConfig config, const std::string& label) {
  config.shards = 1;
  const RunSummary base = RunScenario(config);
  for (const int shards : {2, 8}) {
    ScenarioConfig sharded = config;
    sharded.shards = shards;
    const RunSummary other = RunScenario(sharded);
    ExpectIdentical(base, other,
                    label + " @" + std::to_string(shards) + " shards");
  }
}

// Fig. 2 regime: full mesh, binary outages, single transmission.
ScenarioConfig Fig2Style(RouterKind router) {
  ScenarioConfig config;
  config.router = router;
  config.node_count = 12;
  config.topology = TopologyKind::kFullMesh;
  config.topic_count = 4;
  config.failure_probability = 0.08;
  config.loss_rate = 1e-3;
  config.max_transmissions = 1;
  config.monitor_interval = SimDuration::Seconds(5);
  config.sim_time = SimDuration::Seconds(30);
  config.seed = 11;
  return config;
}

// Fig. 5 regime: sparse random overlay, retries enabled — cross-shard
// retransmissions, ACK losses and reroutes all happen here.
ScenarioConfig Fig5Style(RouterKind router) {
  ScenarioConfig config;
  config.router = router;
  config.node_count = 16;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 4;
  config.topic_count = 5;
  config.failure_probability = 0.10;
  config.loss_rate = 0.01;
  config.max_transmissions = 3;
  config.monitor_interval = SimDuration::Seconds(5);
  config.publish_interval = SimDuration::Millis(500);
  config.sim_time = SimDuration::Seconds(30);
  config.seed = 23;
  return config;
}

// Ext. 7 regime: gray failures (extra loss + delay inflation + asymmetry)
// on top of outages; inflated-delay draws must resolve identically when
// the copy crosses a shard boundary.
ScenarioConfig Ext7Style(RouterKind router) {
  ScenarioConfig config = Fig5Style(router);
  config.gray_probability = 0.15;
  config.gray_extra_loss = 0.3;
  config.gray_delay_factor = 3.0;
  config.gray_asymmetry = 0.5;
  config.seed = 31;
  return config;
}

// Ext. 8 regime: fail-stop broker crashes with resync. Lifecycle
// transitions replicate on every shard; state kills and resync pings run
// on owners only.
ScenarioConfig CrashStyle(RouterKind router) {
  ScenarioConfig config = Fig5Style(router);
  config.broker_mtbf = SimDuration::Seconds(20);
  config.broker_mttr = SimDuration::Seconds(4);
  config.seed = 41;
  return config;
}

TEST(ShardedEngineTest, Fig2BitIdenticalAcrossShardCounts) {
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kRTree, RouterKind::kOracle}) {
    ExpectShardInvariant(Fig2Style(router),
                         std::string("fig2 ") + RouterName(router));
  }
}

TEST(ShardedEngineTest, Fig5BitIdenticalAcrossShardCounts) {
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kDTree, RouterKind::kMultipath}) {
    ExpectShardInvariant(Fig5Style(router),
                         std::string("fig5 ") + RouterName(router));
  }
}

TEST(ShardedEngineTest, GrayFailuresBitIdenticalAcrossShardCounts) {
  ExpectShardInvariant(Ext7Style(RouterKind::kDcrd), "ext7 DCRD");
}

TEST(ShardedEngineTest, BrokerCrashesBitIdenticalAcrossShardCounts) {
  ExpectShardInvariant(CrashStyle(RouterKind::kDcrd), "crash DCRD");
}

// The ext8 regime proper: churn plus adaptive RTO plus peer-death
// detection. Peer deaths fail-fast every pending copy on the link, and the
// reroutes that follow must fire in an order independent of the slot map's
// allocation history (which differs per shard count) — the FailFastPending
// copy-id sort is what this pins down.
TEST(ShardedEngineTest, PeerDeathReroutesBitIdenticalAcrossShardCounts) {
  ScenarioConfig config = CrashStyle(RouterKind::kDcrd);
  config.adaptive_rto = true;
  config.peer_death_detection = true;
  ExpectShardInvariant(config, "churn+peer-death DCRD");
}

TEST(ShardedEngineTest, DelayJitterBitIdenticalAcrossShardCounts) {
  ScenarioConfig config = Fig5Style(RouterKind::kDcrd);
  config.delay_jitter = 0.3;  // shrinks the lookahead but never to zero
  config.adaptive_rto = true;
  config.seed = 47;
  ExpectShardInvariant(config, "jitter DCRD");
}

TEST(ShardedEngineTest, AdversarialRoundRobinPartitionIsResultNeutral) {
  // Round-robin ownership puts essentially every edge across a shard
  // boundary — worst case for the lookahead window, irrelevant for
  // results.
  ScenarioConfig config = Fig5Style(RouterKind::kDcrd);
  const RunSummary base = RunScenario(config);
  for (const int shards : {2, 5}) {
    ScenarioConfig adversarial = config;
    adversarial.shards = shards;
    adversarial.shard_assignment =
        RoundRobinPartition(config.node_count, shards);
    const RunSummary other = RunScenario(adversarial);
    ExpectIdentical(base, other,
                    "round-robin @" + std::to_string(shards) + " shards");
  }
}

TEST(ShardedEngineTest, ShardCountClampedToNodeCount) {
  ScenarioConfig config = Fig2Style(RouterKind::kRTree);
  config.shards = 64;  // > node_count: clamps to 12, still identical
  const RunSummary other = RunScenario(config);
  config.shards = 1;
  ExpectIdentical(RunScenario(config), other, "clamped shards");
}

TEST(ShardedEngineTest, DistributedGossipFallsBackToOneShard) {
  // dcrd_distributed is single-shard only: the sharded run must fall back
  // (with a stderr note) and produce the unsharded result.
  ScenarioConfig config = Fig5Style(RouterKind::kDcrd);
  config.dcrd_distributed = true;
  const RunSummary base = RunScenario(config);
  config.shards = 4;
  ExpectIdentical(base, RunScenario(config), "distributed fallback");
}

// Reads every trace file and tallies records per event kind. Any unreadable
// or malformed file fails the test via the `dropped` count.
std::map<TraceEventKind, std::uint64_t> CountTraceKinds(
    const std::vector<std::string>& files) {
  std::map<TraceEventKind, std::uint64_t> counts;
  for (const std::string& file : files) {
    std::ifstream in(file);
    EXPECT_TRUE(in.is_open()) << file;
    std::size_t dropped = 0;
    for (const TraceRecord& record : ReadTraceJsonl(in, &dropped)) {
      ++counts[record.kind];
    }
    EXPECT_EQ(dropped, 0u) << file;
  }
  return counts;
}

std::vector<std::string> ShardTraceFiles(const std::string& stem,
                                         int shards) {
  std::vector<std::string> files;
  for (int s = 0; s < shards; ++s) {
    files.push_back(stem + ".shard" + std::to_string(s) + ".jsonl");
  }
  return files;
}

TEST(ShardedEngineTest, TraceRecordCountsConserveAcrossShardCounts) {
  // Every record site is gated on ownership (publisher-local kPublish,
  // shard-0 rebuilds and link samples, node-local lifecycle and resyncs),
  // so the per-kind record count summed over the 8 per-shard files must
  // equal the single-shard capture exactly — no event traced twice, none
  // lost to a cut. Run both figure regimes; fig5 exercises cross-shard
  // retransmissions, fig2 the binary-outage rebuild storm.
  struct Regime {
    const char* name;
    ScenarioConfig config;
  };
  for (const Regime& regime :
       {Regime{"fig2", Fig2Style(RouterKind::kDcrd)},
        Regime{"fig5", Fig5Style(RouterKind::kDcrd)}}) {
    const std::string stem =
        testing::TempDir() + "conserve_" + regime.name;

    ScenarioConfig single = regime.config;
    single.shards = 1;
    single.trace_out = stem + ".jsonl";
    RunScenario(single);
    const auto base = CountTraceKinds({single.trace_out});

    ScenarioConfig sharded = regime.config;
    sharded.shards = 8;
    sharded.trace_out = stem + "_s8.jsonl";
    RunScenario(sharded);
    const auto split = CountTraceKinds(ShardTraceFiles(stem + "_s8", 8));

    EXPECT_FALSE(base.empty()) << regime.name;
    EXPECT_EQ(base, split) << regime.name;
  }
}

TEST(ShardedEngineTest, ShardFilesCarryTheirOwnShardStampAndDenseSeq) {
  ScenarioConfig config = Fig5Style(RouterKind::kDcrd);
  config.shards = 4;
  const std::string stem = testing::TempDir() + "stamp";
  config.trace_out = stem + ".jsonl";
  RunScenario(config);

  for (int s = 0; s < 4; ++s) {
    std::ifstream in(stem + ".shard" + std::to_string(s) + ".jsonl");
    ASSERT_TRUE(in.is_open()) << s;
    std::size_t dropped = 0;
    const std::vector<TraceRecord> records = ReadTraceJsonl(in, &dropped);
    ASSERT_EQ(dropped, 0u) << s;
    ASSERT_FALSE(records.empty()) << s;  // every shard owns active brokers
    std::uint32_t expected_seq = 0;
    for (const TraceRecord& record : records) {
      EXPECT_EQ(record.shard, static_cast<std::uint16_t>(s));
      // seq is the recorder's running ordinal: dense from 0, so the merge
      // can reconstruct each shard's capture order exactly.
      EXPECT_EQ(record.seq, expected_seq++);
    }
  }
}

TEST(ShardedEngineTest, ProfiledRunIsResultNeutralAndProfileConserves) {
  // --shard_profile must not perturb results (the profiler only reads wall
  // clocks and drained messages), and the written profile's traffic matrix
  // must conserve: row sums = out totals, column sums = in totals, grand
  // totals equal — receiver-side accounting makes that an identity.
  ScenarioConfig config = Fig5Style(RouterKind::kDcrd);
  const RunSummary base = RunScenario(config);

  ScenarioConfig profiled = config;
  profiled.shards = 8;
  profiled.shard_profile_out = testing::TempDir() + "profile_s8.json";
  const RunSummary other = RunScenario(profiled);
  ExpectIdentical(base, other, "profiled @8 shards");

  std::ifstream in(profiled.shard_profile_out);
  ASSERT_TRUE(in.is_open());
  ShardProfile profile;
  std::string error;
  ASSERT_TRUE(LoadShardProfileJson(in, &profile, &error)) << error;
  EXPECT_EQ(profile.shards, 8);
  EXPECT_GT(profile.rounds, 0u);

  std::uint64_t total_in = 0;
  std::uint64_t total_out = 0;
  std::uint64_t total_events = 0;
  for (int s = 0; s < 8; ++s) {
    const auto& totals = profile.shard_totals[static_cast<std::size_t>(s)];
    std::uint64_t row = 0;
    std::uint64_t col = 0;
    for (int t = 0; t < 8; ++t) {
      row += profile.At(s, t).msgs;
      col += profile.At(t, s).msgs;
      EXPECT_EQ(profile.At(s, s).msgs, 0u);  // no self-traffic over a cut
    }
    EXPECT_EQ(row, totals.msgs_out) << "shard " << s;
    EXPECT_EQ(col, totals.msgs_in) << "shard " << s;
    total_in += totals.msgs_in;
    total_out += totals.msgs_out;
    total_events += totals.events;
  }
  EXPECT_EQ(total_in, total_out);
  EXPECT_GT(total_in, 0u);  // fig5 at 8 shards always crosses cuts
  // Sharding replicates control events, so the event total across shards
  // is at least the single-shard run's — never less (no work vanishes).
  ScenarioConfig solo = config;
  solo.shard_profile_out = testing::TempDir() + "profile_s1.json";
  RunScenario(solo);
  std::ifstream solo_in(solo.shard_profile_out);
  ASSERT_TRUE(solo_in.is_open());
  ShardProfile solo_profile;
  ASSERT_TRUE(LoadShardProfileJson(solo_in, &solo_profile, &error)) << error;
  EXPECT_EQ(solo_profile.shards, 1);
  EXPECT_GE(total_events, solo_profile.shard_totals[0].events);
}

// Reads a whole file; empty on open failure (asserted by callers).
std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::string text;
  char c = 0;
  while (in.get(c)) text.push_back(c);
  return text;
}

TEST(ShardedEngineTest, MergedTelemetryIsByteIdenticalAcrossShardCounts) {
  // The continuous-telemetry contract (DESIGN.md §14): the merged
  // --metrics_json and --timeseries files from an 8-shard run must be
  // byte-identical to the 1-shard run's — kSum series because owner-only
  // deltas partition the work, kReplicated series because the control plane
  // replays identically on every shard. Results must stay untouched too.
  ScenarioConfig config = Ext7Style(RouterKind::kDcrd);
  config.metrics_json = testing::TempDir() + "telemetry_s1.metrics.json";
  config.timeseries_out = testing::TempDir() + "telemetry_s1.series.json";
  const RunSummary base = RunScenario(config);

  ScenarioConfig sharded = Ext7Style(RouterKind::kDcrd);
  sharded.shards = 8;
  sharded.metrics_json = testing::TempDir() + "telemetry_s8.metrics.json";
  sharded.timeseries_out = testing::TempDir() + "telemetry_s8.series.json";
  const RunSummary other = RunScenario(sharded);
  ExpectIdentical(base, other, "telemetry @8 shards");

  const std::string metrics_1 = Slurp(config.metrics_json);
  const std::string metrics_8 = Slurp(sharded.metrics_json);
  ASSERT_FALSE(metrics_1.empty());
  EXPECT_EQ(metrics_1, metrics_8);

  const std::string series_1 = Slurp(config.timeseries_out);
  const std::string series_8 = Slurp(sharded.timeseries_out);
  ASSERT_FALSE(series_1.empty());
  EXPECT_EQ(series_1, series_8);
  EXPECT_NE(series_1.find("\"dcrd-timeseries-v1\""), std::string::npos);
}

TEST(ShardedEngineTest, ChaosSoakAcrossShardsStaysClean) {
  // 20 seeds of the gray + crash cocktail with the invariant checker armed
  // on every shard: loop-freedom, exactly-once hand-up, per-shard counter
  // conservation and cross-shard quiescence all checked, and the merged
  // summary must match the single-shard run bit for bit.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ScenarioConfig config;
    config.router = seed % 2 == 0 ? RouterKind::kDcrd : RouterKind::kRTree;
    config.node_count = 12;
    config.topology = TopologyKind::kRandomDegree;
    config.degree = 3;
    config.topic_count = 4;
    config.sim_time = SimDuration::Seconds(20);
    config.monitor_interval = SimDuration::Seconds(5);
    config.publish_interval = SimDuration::Millis(500);
    config.max_transmissions = 2;
    config.seed = seed;
    config.enable_invariant_checker = true;
    config.failure_probability = 0.08;
    config.loss_rate = 1e-3;
    config.gray_probability = 0.15;
    config.gray_extra_loss = 0.3;
    config.gray_delay_factor = 3.0;
    config.gray_asymmetry = 0.5;
    config.broker_mtbf = SimDuration::Seconds(15);
    config.broker_mttr = SimDuration::Seconds(3);
    config.adaptive_rto = seed % 3 == 0;

    const RunSummary base = RunScenario(config);
    ScenarioConfig sharded = config;
    sharded.shards = 4;
    const RunSummary other = RunScenario(sharded);
    ASSERT_EQ(other.invariant_violation_count, 0U)
        << "seed " << seed << ": "
        << (other.invariant_violations.empty()
                ? std::string("(none recorded)")
                : other.invariant_violations.front());
    ExpectIdentical(base, other, "chaos seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace dcrd
