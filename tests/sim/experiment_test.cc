#include "sim/experiment.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

ScenarioConfig TinyBase() {
  ScenarioConfig config;
  config.node_count = 8;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 3;
  config.topic_count = 2;
  config.sim_time = SimDuration::Seconds(10);
  config.seed = 1;
  return config;
}

TEST(ExperimentTest, SweepShapesMatchInputs) {
  const std::vector<RouterKind> routers = {RouterKind::kDcrd,
                                           RouterKind::kDTree};
  const SweepResult sweep = RunSweep(
      "test", "Pf", TinyBase(), routers, {0.0, 0.05},
      [](double pf, ScenarioConfig& config) {
        config.failure_probability = pf;
      },
      /*repetitions=*/2);
  ASSERT_EQ(sweep.points.size(), 2U);
  EXPECT_DOUBLE_EQ(sweep.points[0].x, 0.0);
  EXPECT_DOUBLE_EQ(sweep.points[1].x, 0.05);
  for (const SweepPoint& point : sweep.points) {
    ASSERT_EQ(point.per_router.size(), 2U);
    for (const RunSummary& summary : point.per_router) {
      EXPECT_GT(summary.messages_published, 0U);
    }
  }
}

TEST(ExperimentTest, RepetitionsPoolCounts) {
  const std::vector<RouterKind> routers = {RouterKind::kDTree};
  const auto run = [&](int reps) {
    return RunSweep(
        "test", "x", TinyBase(), routers, {0.0},
        [](double, ScenarioConfig&) {}, reps);
  };
  const RunSummary once = run(1).points[0].per_router[0];
  const RunSummary thrice = run(3).points[0].per_router[0];
  EXPECT_GT(thrice.messages_published, 2 * once.messages_published);
}

TEST(ExperimentTest, PairedSeedsAcrossRouters) {
  // With Pf=Pl=0 both routers face the identical workload: expected pair
  // counts must agree exactly.
  const std::vector<RouterKind> routers = {RouterKind::kDcrd,
                                           RouterKind::kRTree};
  const SweepResult sweep = RunSweep(
      "test", "x", TinyBase(), routers, {0.0},
      [](double, ScenarioConfig& config) {
        config.failure_probability = 0.0;
        config.loss_rate = 0.0;
      },
      2);
  EXPECT_EQ(sweep.points[0].per_router[0].expected_pairs,
            sweep.points[0].per_router[1].expected_pairs);
}

TEST(ExperimentTest, PrintTableIsWellFormed) {
  const std::vector<RouterKind> routers = {RouterKind::kDcrd,
                                           RouterKind::kOracle};
  const SweepResult sweep = RunSweep(
      "My sweep", "Pf", TinyBase(), routers, {0.0},
      [](double, ScenarioConfig&) {}, 1);
  std::ostringstream os;
  PrintTable(os, sweep, "Delivery Ratio",
             [](const RunSummary& s) { return s.delivery_ratio(); });
  const std::string out = os.str();
  EXPECT_NE(out.find("My sweep"), std::string::npos);
  EXPECT_NE(out.find("Delivery Ratio"), std::string::npos);
  EXPECT_NE(out.find("DCRD"), std::string::npos);
  EXPECT_NE(out.find("ORACLE"), std::string::npos);
  EXPECT_NE(out.find("1.0000"), std::string::npos);
}

TEST(ExperimentTest, PrintStandardPanelsEmitsThreeTables) {
  const SweepResult sweep = RunSweep(
      "panels", "x", TinyBase(), {RouterKind::kDTree}, {0.0},
      [](double, ScenarioConfig&) {}, 1);
  std::ostringstream os;
  PrintStandardPanels(os, sweep);
  const std::string out = os.str();
  EXPECT_NE(out.find("Delivery Ratio"), std::string::npos);
  EXPECT_NE(out.find("QoS Delivery Ratio"), std::string::npos);
  EXPECT_NE(out.find("Packets Sent / Subscriber"), std::string::npos);
}

TEST(LatenessCdfTest, ComputesEmpiricalCdf) {
  RunSummary summary;
  summary.lateness_ratios = {1.1, 1.2, 1.2, 1.6, 2.4};
  const auto cdf = LatenessCdf(summary, {1.0, 1.2, 1.5, 2.0, 3.0});
  ASSERT_EQ(cdf.size(), 5U);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.6);
  EXPECT_DOUBLE_EQ(cdf[2], 0.6);
  EXPECT_DOUBLE_EQ(cdf[3], 0.8);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(LatenessCdfTest, EmptySamplesYieldOnes) {
  RunSummary summary;
  const auto cdf = LatenessCdf(summary, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf[0], 1.0);
  EXPECT_DOUBLE_EQ(cdf[1], 1.0);
}

}  // namespace
}  // namespace dcrd
