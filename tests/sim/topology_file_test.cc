// Engine runs on user-supplied topologies (ScenarioConfig::topology_file).
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/io.h"
#include "graph/topology.h"
#include "sim/engine.h"

namespace dcrd {
namespace {

std::string WriteTempTopology(const Graph& graph, const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::ofstream file(path);
  WriteEdgeList(file, graph);
  return path.string();
}

TEST(TopologyFileTest, EngineRunsOnLoadedOverlay) {
  Rng rng(3);
  const Graph graph = RandomConnected(10, 4, rng);
  const std::string path =
      WriteTempTopology(graph, "dcrd_topology_file_test.txt");

  ScenarioConfig config;
  config.router = RouterKind::kDcrd;
  config.topology_file = path;
  config.topic_count = 3;
  config.failure_probability = 0.0;
  config.loss_rate = 0.0;
  config.sim_time = SimDuration::Seconds(20);
  config.seed = 4;
  const RunSummary summary = RunScenario(config);
  EXPECT_GT(summary.messages_published, 0U);
  EXPECT_DOUBLE_EQ(summary.delivery_ratio(), 1.0);
  std::filesystem::remove(path);
}

TEST(TopologyFileTest, LoadedOverlayIgnoresGeneratorKnobs) {
  // A 4-node line file with node_count set to something else entirely: the
  // file wins; the tight line shape is observable through hop counts
  // (packets/subscriber > 1 even with only one far subscriber pattern).
  const Graph line = Line(4, SimDuration::Millis(10));
  const std::string path =
      WriteTempTopology(line, "dcrd_topology_file_line.txt");

  ScenarioConfig config;
  config.router = RouterKind::kDTree;
  config.topology_file = path;
  config.node_count = 99;  // ignored
  config.topic_count = 2;
  config.failure_probability = 0.0;
  config.loss_rate = 0.0;
  config.sim_time = SimDuration::Seconds(10);
  config.seed = 7;
  const RunSummary summary = RunScenario(config);
  EXPECT_GT(summary.messages_published, 0U);
  EXPECT_DOUBLE_EQ(summary.delivery_ratio(), 1.0);
  std::filesystem::remove(path);
}

TEST(TopologyFileDeathTest, MissingFileAborts) {
  ScenarioConfig config;
  config.topology_file = "/nonexistent/overlay.txt";
  config.sim_time = SimDuration::Seconds(1);
  EXPECT_DEATH((void)RunScenario(config), "cannot open topology file");
}

TEST(TopologyFileDeathTest, MalformedFileAborts) {
  const auto path =
      std::filesystem::temp_directory_path() / "dcrd_topology_bad.txt";
  std::ofstream(path) << "not a topology\n";
  ScenarioConfig config;
  config.topology_file = path.string();
  config.sim_time = SimDuration::Seconds(1);
  EXPECT_DEATH((void)RunScenario(config), "positive node count");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dcrd
