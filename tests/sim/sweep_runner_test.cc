#include "sim/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace dcrd {
namespace {

TEST(SweepRunnerTest, ResolveJobCountTakesPositiveLiterally) {
  EXPECT_EQ(ResolveJobCount(1), 1);
  EXPECT_EQ(ResolveJobCount(7), 7);
}

TEST(SweepRunnerTest, ResolveJobCountDefaultsToHardware) {
  EXPECT_GE(ResolveJobCount(0), 1);
  EXPECT_GE(ResolveJobCount(-3), 1);
}

TEST(SweepRunnerTest, CapJobsForShardsLeavesSingleLayerAlone) {
  // One parallelism layer: an explicit --jobs stays literal, even when it
  // alone oversubscribes (that has always been the operator's call).
  EXPECT_EQ(CapJobsForShards(7, 1, /*hardware_threads=*/4), 7);
  EXPECT_EQ(CapJobsForShards(7, 0, /*hardware_threads=*/4), 7);
}

TEST(SweepRunnerTest, CapJobsForShardsCapsTheProduct) {
  // 8 jobs x 4 shards = 32 threads on 16 hardware threads: jobs drops to
  // 16 / 4 = 4.
  EXPECT_EQ(CapJobsForShards(8, 4, /*hardware_threads=*/16), 4);
  // Fits: untouched.
  EXPECT_EQ(CapJobsForShards(4, 4, /*hardware_threads=*/16), 4);
  EXPECT_EQ(CapJobsForShards(2, 4, /*hardware_threads=*/32), 2);
  // Shards alone exceed the machine: one job at a time, never zero.
  EXPECT_EQ(CapJobsForShards(8, 32, /*hardware_threads=*/16), 1);
  // Unknown hardware: no basis for a cap.
  EXPECT_EQ(CapJobsForShards(8, 4, /*hardware_threads=*/0), 8);
}

TEST(SweepRunnerTest, RunsEveryCellExactlyOnce) {
  SweepRunner runner(4);
  std::vector<std::atomic<int>> hits(64);
  runner.Run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(SweepRunnerTest, SerialPathRunsInIndexOrder) {
  SweepRunner runner(1);
  std::vector<std::size_t> order;
  runner.Run(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16U);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SweepRunnerTest, OrderedAggregationUnderAdversarialCompletionOrder) {
  // Early cells sleep longest, so under parallelism high indices finish
  // first — the aggregation must still come out indexed, not
  // completion-ordered.
  constexpr std::size_t kCells = 12;
  SweepRunner runner(4);
  std::vector<std::size_t> results(kCells, 0);
  std::vector<std::size_t> completion;
  std::mutex completion_mutex;
  runner.Run(kCells, [&](std::size_t i) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds((kCells - i) * 5));
    results[i] = i * i;
    const std::lock_guard<std::mutex> lock(completion_mutex);
    completion.push_back(i);
  });
  for (std::size_t i = 0; i < kCells; ++i) EXPECT_EQ(results[i], i * i);
  // Sanity: with 4 workers and inverted sleeps, at least one cell must have
  // completed out of index order (otherwise the test is not adversarial).
  if (std::thread::hardware_concurrency() > 1) {
    bool out_of_order = false;
    for (std::size_t i = 1; i < completion.size(); ++i) {
      if (completion[i] < completion[i - 1]) out_of_order = true;
    }
    EXPECT_TRUE(out_of_order);
  }
}

TEST(SweepRunnerTest, ExceptionInCellPropagatesWithCellLabel) {
  SweepRunner runner(4);
  try {
    runner.Run(
        32,
        [&](std::size_t i) {
          if (i == 5) throw std::runtime_error("boom in cell body");
        },
        [](std::size_t i) { return "(cell " + std::to_string(i) + ")"; });
    FAIL() << "expected the sweep to rethrow the cell failure";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("(cell 5)"), std::string::npos) << message;
    EXPECT_NE(message.find("boom in cell body"), std::string::npos)
        << message;
  }
}

TEST(SweepRunnerTest, LowestIndexedFailureWinsAndNoDeadlock) {
  // Several failing cells: the rethrow names the lowest index, and the
  // call returns (joins all workers) rather than hanging.
  SweepRunner runner(8);
  try {
    runner.Run(64, [&](std::size_t i) {
      if (i % 7 == 3) {
        throw std::runtime_error("fail " + std::to_string(i));
      }
    });
    FAIL() << "expected a failure";
  } catch (const std::runtime_error& e) {
    // Lowest failing index overall is 3; cells before the abort flag flips
    // always include it because indices are claimed in order.
    EXPECT_NE(std::string(e.what()).find("fail 3"), std::string::npos)
        << e.what();
  }
}

TEST(SweepRunnerTest, StatsCoverEveryCell) {
  SweepRunner runner(2);
  SweepRunStats stats;
  runner.Run(
      10, [](std::size_t) {}, nullptr, &stats);
  EXPECT_EQ(stats.jobs, 2);
  EXPECT_EQ(stats.cells, 10U);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_EQ(stats.cell_seconds.size(), 10U);
  EXPECT_GE(stats.cells_per_second(), 0.0);
}

ScenarioConfig TinyBase() {
  ScenarioConfig config;
  config.node_count = 8;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 3;
  config.topic_count = 2;
  config.failure_probability = 0.05;
  config.sim_time = SimDuration::Seconds(10);
  config.seed = 7;
  return config;
}

void ExpectSummariesIdentical(const RunSummary& a, const RunSummary& b) {
  EXPECT_EQ(a.expected_pairs, b.expected_pairs);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.qos_pairs, b.qos_pairs);
  EXPECT_EQ(a.duplicate_deliveries, b.duplicate_deliveries);
  EXPECT_EQ(a.data_transmissions, b.data_transmissions);
  EXPECT_EQ(a.ack_transmissions, b.ack_transmissions);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_EQ(a.messages_published, b.messages_published);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.spurious_retransmissions, b.spurious_retransmissions);
  // Sample vectors must match exactly *including order* — the ordered
  // reduce absorbs repetitions in rep order for any job count.
  EXPECT_EQ(a.lateness_ratios, b.lateness_ratios);
  EXPECT_EQ(a.delay_ms_samples, b.delay_ms_samples);
}

TEST(SweepRunnerTest, ParallelSweepBitIdenticalToSerial) {
  const std::vector<RouterKind> routers = {RouterKind::kDcrd,
                                           RouterKind::kDTree};
  const std::vector<double> xs = {0.0, 0.08};
  const auto configure = [](double pf, ScenarioConfig& config) {
    config.failure_probability = pf;
  };
  const SweepResult serial = RunSweep("t", "Pf", TinyBase(), routers, xs,
                                      configure, /*repetitions=*/2,
                                      /*jobs=*/1);
  const SweepResult parallel = RunSweep("t", "Pf", TinyBase(), routers, xs,
                                        configure, /*repetitions=*/2,
                                        /*jobs=*/4);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(serial.points[p].x, parallel.points[p].x);
    ASSERT_EQ(serial.points[p].per_router.size(),
              parallel.points[p].per_router.size());
    for (std::size_t r = 0; r < serial.points[p].per_router.size(); ++r) {
      ExpectSummariesIdentical(serial.points[p].per_router[r],
                               parallel.points[p].per_router[r]);
    }
  }
}

TEST(SweepRunnerTest, RunRepetitionsMatchesSerialAbsorbLoop) {
  const auto make_config = [](int rep) {
    ScenarioConfig config = TinyBase();
    config.seed = 7 + static_cast<std::uint64_t>(rep);
    return config;
  };
  RunSummary serial;
  for (int rep = 0; rep < 3; ++rep) {
    serial.Absorb(RunScenario(make_config(rep)));
  }
  const RunSummary parallel = RunRepetitions(3, /*jobs=*/3, make_config);
  ExpectSummariesIdentical(serial, parallel);
}

}  // namespace
}  // namespace dcrd
