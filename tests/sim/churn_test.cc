// Subscription churn: the workload mutation itself plus whole-system
// behaviour when subscribers come and go mid-run.
#include <set>

#include <gtest/gtest.h>

#include "dcrd/dcrd_router.h"
#include "graph/shortest_path.h"
#include "graph/topology.h"
#include "routing/test_harness.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace dcrd {
namespace {

ScenarioConfig ChurnConfig() {
  ScenarioConfig config;
  config.node_count = 20;
  config.topic_count = 5;
  config.degree = 6;
  config.qos_factor = 3.0;
  return config;
}

TEST(ChurnTest, PreservesSubscriptionCounts) {
  Rng topo_rng(1), rng(2), churn_rng(3);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = ChurnConfig();
  config.subscription_churn = 0.5;
  SubscriptionTable table = GenerateWorkload(graph, config, rng);
  std::vector<std::size_t> before;
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    before.push_back(
        table.subscriptions(TopicId(static_cast<TopicId::underlying_type>(t)))
            .size());
  }
  for (int round = 0; round < 5; ++round) {
    ApplySubscriptionChurn(graph, config, churn_rng, table);
  }
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    EXPECT_EQ(
        table.subscriptions(TopicId(static_cast<TopicId::underlying_type>(t)))
            .size(),
        before[t]);
  }
}

TEST(ChurnTest, ActuallyReplacesSubscribers) {
  Rng topo_rng(1), rng(2), churn_rng(3);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = ChurnConfig();
  config.subscription_churn = 0.5;
  SubscriptionTable table = GenerateWorkload(graph, config, rng);
  const TopicId topic(0);
  const auto before = table.SubscriberNodes(topic);
  ApplySubscriptionChurn(graph, config, churn_rng, table);
  const auto after = table.SubscriberNodes(topic);
  const std::set<NodeId> before_set(before.begin(), before.end());
  std::size_t changed = 0;
  for (const NodeId node : after) changed += before_set.contains(node) ? 0 : 1;
  EXPECT_GT(changed, 0U);
}

TEST(ChurnTest, NeverSubscribesThePublisher) {
  Rng topo_rng(1), rng(2), churn_rng(3);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = ChurnConfig();
  config.subscription_churn = 1.0;  // maximal churn
  SubscriptionTable table = GenerateWorkload(graph, config, rng);
  for (int round = 0; round < 10; ++round) {
    ApplySubscriptionChurn(graph, config, churn_rng, table);
  }
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    EXPECT_FALSE(table.IsSubscribed(topic, table.publisher(topic)));
    EXPECT_FALSE(table.subscriptions(topic).empty());
  }
}

TEST(ChurnTest, JoinerDeadlineFollowsQosRule) {
  Rng topo_rng(1), rng(2), churn_rng(3);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = ChurnConfig();
  config.subscription_churn = 1.0;
  SubscriptionTable table = GenerateWorkload(graph, config, rng);
  ApplySubscriptionChurn(graph, config, churn_rng, table);
  for (std::size_t t = 0; t < table.topic_count(); ++t) {
    const TopicId topic(static_cast<TopicId::underlying_type>(t));
    const PathTree tree = ShortestDelayTree(graph, table.publisher(topic));
    for (const Subscription& sub : table.subscriptions(topic)) {
      EXPECT_NEAR(sub.deadline.millis(),
                  tree.distance[sub.subscriber.underlying()].millis() * 3.0,
                  0.001);
    }
  }
}

TEST(ChurnTest, ZeroChurnIsNoop) {
  Rng topo_rng(1), rng(2), churn_rng(3);
  const Graph graph = RandomConnected(20, 6, topo_rng);
  ScenarioConfig config = ChurnConfig();
  config.subscription_churn = 0.0;
  SubscriptionTable table = GenerateWorkload(graph, config, rng);
  const auto before = table.SubscriberNodes(TopicId(0));
  ApplySubscriptionChurn(graph, config, churn_rng, table);
  EXPECT_EQ(table.SubscriberNodes(TopicId(0)), before);
}

TEST(ChurnTest, EndToEndRunStaysHealthy) {
  // Whole-system: churn at every epoch, every router survives and DCRD
  // still delivers essentially everything that was expected at publish
  // time.
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kDTree, RouterKind::kMultipath}) {
    ScenarioConfig config;
    config.router = router;
    config.node_count = 15;
    config.degree = 5;
    config.topic_count = 4;
    config.failure_probability = 0.04;
    config.subscription_churn = 0.3;
    config.monitor_interval = SimDuration::Seconds(10);  // frequent churn
    config.sim_time = SimDuration::Seconds(60);
    config.seed = 5;
    const RunSummary summary = RunScenario(config);
    EXPECT_GT(summary.messages_published, 0U) << RouterName(router);
    EXPECT_LE(summary.qos_pairs, summary.delivered_pairs);
    EXPECT_LE(summary.delivered_pairs, summary.expected_pairs);
    if (router == RouterKind::kDcrd) {
      EXPECT_GT(summary.delivery_ratio(), 0.95);
    }
  }
}

TEST(ChurnTest, DcrdDropsInFlightPacketForDepartedSubscriber) {
  // Publish toward a subscriber, then remove the subscription and rebuild
  // while the packet is still in flight: the router must neither crash nor
  // deliver, and the episode must wind down cleanly.
  testing::RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  // Unsubscribe and rebuild while the packet is mid-flight on the first
  // hop; node 1 then has no tables for the departed subscriber.
  h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Millis(5));
  ASSERT_TRUE(h.subscriptions.RemoveSubscription(topic, NodeId(2)));
  router.Rebuild(h.monitor.view());
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(2)));
  EXPECT_TRUE(h.scheduler.empty());
}

}  // namespace
}  // namespace dcrd
