#include "dcrd/dcrd_router.h"

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "routing/test_harness.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

Graph Diamond() {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(10));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(2), NodeId(1), SimDuration::Millis(2));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(1));
  return graph;
}

TEST(DcrdRouterTest, DeliversAlongMinExpectedDelayPath) {
  RouterHarness h(Diamond(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  // With perfect links the expected-delay-optimal route is the shortest
  // delay path 0-2-1-3 (4 ms).
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(3)),
            SimTime::Zero() + SimDuration::Millis(4));
}

TEST(DcrdRouterTest, MulticastSharesCopies) {
  RouterHarness h(Line(4, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 3U);
}

TEST(DcrdRouterTest, PublisherColocatedSubscriber) {
  RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(0), SimDuration::Millis(10));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(0)));
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(1)));
}

TEST(DcrdRouterTest, SwitchesNeighborAfterAckTimeout) {
  // Diamond where the preferred first hop (2) is permanently dead but the
  // direct edge works: DCRD must fail over within one episode.
  const Graph graph = Diamond();
  const LinkId link02 = *graph.FindEdge(NodeId(0), NodeId(2));
  std::uint64_t seed = 0;
  for (; seed < 100'000; ++seed) {
    const FailureSchedule schedule(seed, 0.35);
    bool ok = true;
    // 0-2 down for the first 3 seconds; all other links up.
    for (int s = 0; s < 3 && ok; ++s) {
      const SimTime t = SimTime::FromMicros(s * 1'000'000);
      ok = !schedule.IsUp(link02, t);
      for (std::size_t e = 0; e < graph.edge_count() && ok; ++e) {
        const LinkId link(static_cast<LinkId::underlying_type>(e));
        if (link != link02) ok = schedule.IsUp(link, t);
      }
    }
    if (ok) break;
  }
  ASSERT_LT(seed, 100'000U);

  RouterHarness h(Diamond(), 0.35, 0.0, seed);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  // Failover cost: one dead transmission to 2, ACK timeout (1 ms link delay
  // + 1 ms slack under the instant-ACK model), then 0-1-3 (11 ms): 13 ms.
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(3)),
            SimTime::Zero() + SimDuration::Millis(13));
}

TEST(DcrdRouterTest, ReroutesToUpstreamWhenSubtreeDead) {
  // Line 0-1-2 plus edge 0-3-2: node 1's only way to 2 is direct; if 1-2 is
  // dead, node 1 must bounce the packet back to 0, which reroutes via 3.
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(1), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(0), NodeId(3), SimDuration::Millis(20));
  graph.AddEdge(NodeId(3), NodeId(2), SimDuration::Millis(20));
  const LinkId link12 = *graph.FindEdge(NodeId(1), NodeId(2));

  std::uint64_t seed = 0;
  for (; seed < 200'000; ++seed) {
    const FailureSchedule schedule(seed, 0.3);
    bool ok = true;
    for (int s = 0; s < 3 && ok; ++s) {
      const SimTime t = SimTime::FromMicros(s * 1'000'000);
      ok = !schedule.IsUp(link12, t);
      for (std::size_t e = 0; e < graph.edge_count() && ok; ++e) {
        const LinkId link(static_cast<LinkId::underlying_type>(e));
        if (link != link12) ok = schedule.IsUp(link, t);
      }
    }
    if (ok) break;
  }
  ASSERT_LT(seed, 200'000U);

  RouterHarness h(std::move(graph), 0.3, 0.0, seed);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
  EXPECT_EQ(router.dropped_undeliverable(), 0U);
}

TEST(DcrdRouterTest, DropsWhenPublisherExhaustsAllOptions) {
  RouterHarness h(Line(2, SimDuration::Millis(10)), 1.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(1)));
  EXPECT_EQ(router.dropped_undeliverable(), 1U);
  EXPECT_TRUE(h.scheduler.empty());  // episode terminated cleanly
}

TEST(DcrdRouterTest, TablesExposedPerSubscriber) {
  RouterHarness h(Diamond(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const DestinationTables& tables = router.TablesFor(topic, NodeId(3));
  EXPECT_EQ(tables.subscriber, NodeId(3));
  EXPECT_TRUE(tables.converged);
  EXPECT_EQ(tables.per_node[3].dr, (DR{0.0, 1.0}));
  EXPECT_TRUE(tables.per_node[0].dr.reachable());
}

TEST(DcrdRouterTest, NoForwardingLoopsUnderChurn) {
  // Hammer a small overlay with many messages under heavy failures; the
  // run must terminate (no livelock) and data traffic stays bounded by the
  // episode/path-growth argument.
  Rng rng(31);
  RouterHarness h(RandomConnected(8, 3, rng), 0.15, 0.001, /*seed=*/5);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  for (std::uint32_t v = 1; v < 8; ++v) {
    h.subscriptions.AddSubscription(topic, NodeId(v),
                                    SimDuration::Millis(300));
  }
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  for (int i = 0; i < 50; ++i) {
    h.PublishVia(router, topic);
    h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Seconds(1));
  }
  h.scheduler.Run();
  EXPECT_TRUE(h.scheduler.empty());
  // 50 messages x 7 subscribers; loop-free forwarding keeps traffic sane.
  EXPECT_LT(h.network.counters(TrafficClass::kData).attempted, 50'000U);
  EXPECT_GT(h.sink.deliveries().size(), 300U);
}

TEST(DcrdRouterTest, BestEffortFallbackRescuesTightDeadlines) {
  // Deadline so tight no neighbour qualifies: with fallback the packet
  // still arrives (late); without it the publisher drops it.
  const SimDuration tight = SimDuration::Micros(100);
  for (const bool fallback : {true, false}) {
    RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
    const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
    h.subscriptions.AddSubscription(topic, NodeId(2), tight);
    DcrdConfig config;
    config.best_effort_fallback = fallback;
    DcrdRouter router(h.Context(), config);
    router.Rebuild(h.monitor.view());
    const Message message = h.PublishVia(router, topic);
    h.scheduler.Run();
    EXPECT_EQ(h.sink.Delivered(message.id, NodeId(2)), fallback);
  }
}

TEST(DcrdRouterTest, RetransmitsBeforeSwitchingWhenMIsTwo) {
  RouterHarness h(Line(2, SimDuration::Millis(10)), 1.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  DcrdRouter router(h.Context(/*m=*/2));
  router.Rebuild(h.monitor.view());
  h.PublishVia(router, topic);
  h.scheduler.Run();
  // Dead link, one neighbour: exactly m = 2 transmissions then a drop.
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 2U);
  EXPECT_EQ(router.dropped_undeliverable(), 1U);
}

TEST(DcrdRouterTest, DuplicateFreshArrivalsSuppressed) {
  // Force an ACK loss so the sender retries a *different* neighbour while
  // the first copy was actually delivered; the subscriber must record the
  // message but the network must not melt. We approximate by running with
  // moderate loss and asserting global sanity.
  Rng rng(77);
  RouterHarness h(RandomConnected(10, 4, rng), 0.0, 0.05, /*seed=*/3);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  for (std::uint32_t v = 1; v < 10; v += 3) {
    h.subscriptions.AddSubscription(topic, NodeId(v),
                                    SimDuration::Millis(400));
  }
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  for (int i = 0; i < 100; ++i) {
    h.PublishVia(router, topic);
    h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Millis(1200));
  }
  h.scheduler.Run();
  EXPECT_TRUE(h.scheduler.empty());
  // Every (message, subscriber) pair delivered at least once despite loss.
  std::size_t delivered_pairs = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    for (std::uint32_t v = 1; v < 10; v += 3) {
      delivered_pairs += h.sink.Delivered(MessageId(id), NodeId(v)) ? 1 : 0;
    }
  }
  EXPECT_EQ(delivered_pairs, 300U);
}

}  // namespace
}  // namespace dcrd
