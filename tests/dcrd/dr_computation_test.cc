#include "dcrd/dr_computation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/topology.h"
#include "net/failure_schedule.h"

namespace dcrd {
namespace {

// Builds a MonitoredView straight from ground truth with uniform gamma.
MonitoredView PerfectView(const Graph& graph, double gamma = 1.0) {
  std::vector<SimDuration> alphas;
  std::vector<double> gammas;
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    alphas.push_back(graph.edge(LinkId(static_cast<LinkId::underlying_type>(e))).delay);
    gammas.push_back(gamma);
  }
  return MonitoredView(std::move(alphas), std::move(gammas));
}

TEST(MonitoredDistancesTest, MatchesDijkstra) {
  const Graph graph = Line(4, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 10'000.0);
  EXPECT_DOUBLE_EQ(dist[3], 30'000.0);
}

TEST(DrComputationTest, LineGraphReliableLinks) {
  // On a reliable line, d equals the shortest-path delay and r = 1.
  const Graph graph = Line(4, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  const auto tables = ComputeDestinationTables(graph, view, NodeId(3),
                                               1e9, dist, {});
  EXPECT_TRUE(tables.converged);
  EXPECT_DOUBLE_EQ(tables.per_node[3].dr.d_us, 0.0);
  EXPECT_DOUBLE_EQ(tables.per_node[3].dr.r, 1.0);
  EXPECT_NEAR(tables.per_node[2].dr.d_us, 10'000.0, 1.0);
  EXPECT_NEAR(tables.per_node[0].dr.d_us, 30'000.0, 1.0);
  EXPECT_DOUBLE_EQ(tables.per_node[0].dr.r, 1.0);
}

TEST(DrComputationTest, SubscriberSeedIsZeroOne) {
  const Graph graph = Line(3, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  const auto tables = ComputeDestinationTables(graph, view, NodeId(2),
                                               1e9, dist, {});
  EXPECT_EQ(tables.per_node[2].dr, (DR{0.0, 1.0}));
  EXPECT_TRUE(tables.per_node[2].primary.empty());
}

TEST(DrComputationTest, SendingListSortedByTheorem1) {
  Rng rng(3);
  const Graph graph = RandomConnected(12, 5, rng);
  const MonitoredView view = PerfectView(graph, 0.9);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  const auto tables = ComputeDestinationTables(graph, view, NodeId(11),
                                               1e9, dist, {});
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const auto& list = tables.per_node[v].primary;
    for (std::size_t k = 0; k + 1 < list.size(); ++k) {
      EXPECT_LE(list[k].d_via_us * list[k + 1].r_via,
                list[k + 1].d_via_us * list[k].r_via + 1e-6)
          << "node " << v << " entry " << k;
    }
  }
}

TEST(DrComputationTest, EligibilityFiltersOnBudget) {
  // Line 0-1-2-3, subscriber 3. Node 1's neighbours are 0 (d=inf via? no:
  // d_0 is finite but large) and 2 (d=10ms). With budget(1) = 15ms the
  // entry via node 0 (d_0 = 30ms > 15ms) is excluded from the primary list
  // and lands on the fallback list.
  const Graph graph = Line(4, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  std::vector<double> publisher_dist = {0.0, 10'000.0, 20'000.0, 30'000.0};
  const double deadline = 25'000.0;  // budget(1) = 15ms, budget(2) = 5ms
  DrComputationConfig config;
  const auto tables = ComputeDestinationTables(graph, view, NodeId(3),
                                               deadline, publisher_dist,
                                               config);
  const auto& node1 = tables.per_node[1];
  ASSERT_EQ(node1.primary.size(), 1U);
  EXPECT_EQ(node1.primary[0].neighbor, NodeId(2));
  ASSERT_EQ(node1.fallback.size(), 1U);
  EXPECT_EQ(node1.fallback[0].neighbor, NodeId(0));
}

TEST(DrComputationTest, FallbackDisabledLeavesListEmpty) {
  const Graph graph = Line(4, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  std::vector<double> publisher_dist = {0.0, 10'000.0, 20'000.0, 30'000.0};
  DrComputationConfig config;
  config.build_fallback = false;
  const auto tables = ComputeDestinationTables(graph, view, NodeId(3),
                                               25'000.0, publisher_dist,
                                               config);
  EXPECT_TRUE(tables.per_node[1].fallback.empty());
}

TEST(DrComputationTest, UnreachableBudgetKillsList) {
  // Deadline smaller than any path: nobody qualifies; r = 0 everywhere
  // except the subscriber.
  const Graph graph = Line(3, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  std::vector<double> publisher_dist = {0.0, 10'000.0, 20'000.0};
  const auto tables = ComputeDestinationTables(graph, view, NodeId(2),
                                               /*deadline=*/1.0,
                                               publisher_dist, {});
  EXPECT_FALSE(tables.per_node[0].dr.reachable());
  EXPECT_TRUE(tables.per_node[0].primary.empty());
}

TEST(DrComputationTest, UnreliableLinksLowerR) {
  // Line 0-1-2 toward subscriber 2 with gamma = 0.9 everywhere. Node 1's
  // sending list is {2, 0} (the paper's recursion admits the neighbour
  // behind you; forwarding-time loop prevention is what stops actual
  // loops), so the fixed point solves
  //   r_1 = 1 - (1 - 0.9)(1 - 0.9 r_0),   r_0 = 0.9 r_1
  // giving r_1 = 0.9 / (1 - 0.081) and r_0 = 0.9 r_1 — above the pure
  // chain values 0.9 / 0.81 but strictly below 1.
  const Graph graph = Line(3, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph, 0.9);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  const auto tables = ComputeDestinationTables(graph, view, NodeId(2),
                                               1e9, dist, {});
  const double r1 = 0.9 / (1 - 0.081);
  EXPECT_NEAR(tables.per_node[1].dr.r, r1, 1e-6);
  EXPECT_NEAR(tables.per_node[0].dr.r, 0.9 * r1, 1e-6);
  EXPECT_GT(tables.per_node[1].dr.r, 0.9);
  EXPECT_LT(tables.per_node[1].dr.r, 1.0);
}

TEST(DrComputationTest, RedundantPathsRaiseR) {
  // Diamond 0->{1,2}->3: with gamma=0.9 everywhere node 0 reaches 3 via two
  // disjoint 2-hop routes; r must exceed the single-path 0.81.
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(10));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(10));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(12));
  graph.AddEdge(NodeId(2), NodeId(3), SimDuration::Millis(12));
  const MonitoredView view = PerfectView(graph, 0.9);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  const auto tables = ComputeDestinationTables(graph, view, NodeId(3),
                                               1e9, dist, {});
  EXPECT_GT(tables.per_node[0].dr.r, 0.81);
  ASSERT_EQ(tables.per_node[0].primary.size(), 2U);
  EXPECT_EQ(tables.per_node[0].primary[0].neighbor, NodeId(1));
}

TEST(DrComputationTest, MTransmissionsRaiseRAndDelay) {
  const Graph graph = Line(3, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph, 0.8);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  DrComputationConfig m1, m2;
  m1.max_transmissions = 1;
  m2.max_transmissions = 2;
  const auto t1 = ComputeDestinationTables(graph, view, NodeId(2), 1e9, dist, m1);
  const auto t2 = ComputeDestinationTables(graph, view, NodeId(2), 1e9, dist, m2);
  EXPECT_GT(t2.per_node[0].dr.r, t1.per_node[0].dr.r);
  EXPECT_GT(t2.per_node[0].dr.d_us, t1.per_node[0].dr.d_us);
}

TEST(DrComputationTest, ConvergesOnCyclicTopologies) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const Graph graph = RandomConnected(20, 6, rng);
    const MonitoredView view = PerfectView(graph, 0.95);
    const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
    const auto tables = ComputeDestinationTables(graph, view, NodeId(19),
                                                 300'000.0, dist, {});
    EXPECT_TRUE(tables.converged) << "seed " << seed;
    EXPECT_LT(tables.sweeps_used, 64);
    // Everybody with a list within budget can reach the subscriber.
    for (std::size_t v = 0; v < 20; ++v) {
      if (!tables.per_node[v].primary.empty()) {
        EXPECT_TRUE(tables.per_node[v].dr.reachable());
        EXPECT_GT(tables.per_node[v].dr.r, 0.0);
        EXPECT_LE(tables.per_node[v].dr.r, 1.0 + 1e-12);
      }
    }
  }
}

TEST(DrComputationTest, DLowerBoundedByShortestPath) {
  // The expected delay can never beat the monitored shortest-path delay.
  Rng rng(9);
  const Graph graph = RandomConnected(15, 5, rng);
  const MonitoredView view = PerfectView(graph, 0.9);
  const auto to_sub = MonitoredDistancesFrom(graph, view, NodeId(14));
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));
  const auto tables = ComputeDestinationTables(graph, view, NodeId(14),
                                               1e9, dist, {});
  for (std::size_t v = 0; v < 15; ++v) {
    if (tables.per_node[v].dr.reachable()) {
      EXPECT_GE(tables.per_node[v].dr.d_us, to_sub[v] - 1.0) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace dcrd
