// Persistency-mode tests (paper Section III: "persist all packets, and then
// send them when the failures are recovered").
#include <gtest/gtest.h>

#include "dcrd/dcrd_router.h"
#include "graph/topology.h"
#include "routing/test_harness.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

// Finds a seed where the single link 0-1 is down for the first
// `down_seconds` seconds and up in the second after.
std::uint64_t SeedWithInitialOutage(const Graph& /*graph*/, LinkId link,
                                    double pf, int outage_epochs,
                                    int down_seconds) {
  for (std::uint64_t seed = 0; seed < 500'000; ++seed) {
    const FailureSchedule schedule(seed, pf, SimDuration::Seconds(1),
                                   outage_epochs);
    bool matches = true;
    for (int s = 0; s < down_seconds && matches; ++s) {
      matches = !schedule.IsUp(link, SimTime::FromMicros(s * 1'000'000LL));
    }
    if (matches &&
        schedule.IsUp(link, SimTime::FromMicros(down_seconds * 1'000'000LL))) {
      return seed;
    }
  }
  ADD_FAILURE() << "no seed with the requested outage found";
  return 0;
}

struct PersistenceFixture {
  Graph graph = Line(2, SimDuration::Millis(10));
  LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
};

TEST(PersistenceTest, RescuesPacketAcrossLongOutage) {
  PersistenceFixture f;
  const std::uint64_t seed =
      SeedWithInitialOutage(f.graph, f.link, 0.3, /*outage_epochs=*/4,
                            /*down_seconds=*/4);
  for (const bool persistence : {false, true}) {
    Graph copy = f.graph;
    RouterHarness h(std::move(copy), 0.3, 0.0, seed);
    // Match the failure process the seed was searched for.
    OverlayNetwork network(h.graph, h.scheduler,
                           FailureSchedule(seed, 0.3, SimDuration::Seconds(1), 4),
                           OverlayNetworkConfig{}, Rng(seed));
    const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
    h.subscriptions.AddSubscription(topic, NodeId(1),
                                    SimDuration::Millis(100));
    DcrdConfig config;
    config.enable_persistence = persistence;
    RouterContext context = h.Context();
    context.network = &network;
    DcrdRouter router(context, config);
    router.Rebuild(h.monitor.view());
    const Message message = h.PublishVia(router, topic);
    h.scheduler.Run();
    EXPECT_EQ(h.sink.Delivered(message.id, NodeId(1)), persistence);
    if (persistence) {
      // Delivery happened only after the outage cleared (>= 4 s), far past
      // the deadline — persistence trades latency for delivery.
      EXPECT_GE(h.sink.ArrivalOf(message.id, NodeId(1)),
                SimTime::Zero() + SimDuration::Seconds(4));
      EXPECT_GT(router.persistence_retries(), 0U);
      EXPECT_EQ(router.dropped_undeliverable(), 0U);
    } else {
      EXPECT_EQ(router.dropped_undeliverable(), 1U);
    }
  }
}

TEST(PersistenceTest, GivesUpAfterRetryCap) {
  PersistenceFixture f;
  RouterHarness h(std::move(f.graph), 1.0, 0.0);  // permanently dead link
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  DcrdConfig config;
  config.enable_persistence = true;
  config.persistence_max_retries = 5;
  DcrdRouter router(h.Context(), config);
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(1)));
  EXPECT_EQ(router.persistence_retries(), 5U);
  EXPECT_EQ(router.dropped_undeliverable(), 1U);
  EXPECT_TRUE(h.scheduler.empty());
}

TEST(PersistenceTest, OffByDefaultDropsImmediately) {
  PersistenceFixture f;
  RouterHarness h(std::move(f.graph), 1.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_EQ(router.persisted_packets(), 0U);
  EXPECT_EQ(router.persistence_retries(), 0U);
  EXPECT_EQ(router.dropped_undeliverable(), 1U);
}

TEST(PersistenceTest, RetryGenerationBypassesDuplicateSuppression) {
  // Two-hop line: node 1's processed-set has seen the message from the
  // failed first attempt; the persisted retry must still get through.
  Graph graph = Line(3, SimDuration::Millis(10));
  const LinkId link12 = *graph.FindEdge(NodeId(1), NodeId(2));
  // Link 1-2 down for the first 2 seconds, link 0-1 always up.
  const LinkId link01 = *graph.FindEdge(NodeId(0), NodeId(1));
  std::uint64_t seed = 0;
  for (; seed < 500'000; ++seed) {
    const FailureSchedule schedule(seed, 0.25, SimDuration::Seconds(1), 2);
    bool ok = true;
    for (int s = 0; s < 2 && ok; ++s) {
      const SimTime t = SimTime::FromMicros(s * 1'000'000LL);
      ok = !schedule.IsUp(link12, t) && schedule.IsUp(link01, t);
    }
    ok = ok && schedule.IsUp(link12, SimTime::FromMicros(2'000'000)) &&
         schedule.IsUp(link01, SimTime::FromMicros(2'000'000));
    if (ok) break;
  }
  ASSERT_LT(seed, 500'000U);

  RouterHarness h(std::move(graph), 0.25, 0.0, seed);
  OverlayNetwork network(h.graph, h.scheduler,
                         FailureSchedule(seed, 0.25, SimDuration::Seconds(1), 2),
                         OverlayNetworkConfig{}, Rng(seed));
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(100));
  DcrdConfig config;
  config.enable_persistence = true;
  RouterContext context = h.Context();
  context.network = &network;
  DcrdRouter router(context, config);
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
}

}  // namespace
}  // namespace dcrd
