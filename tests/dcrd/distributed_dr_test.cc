// The Section III-B gossip protocol run literally over the simulated
// network, checked against the centralized fixed-point solver.
#include <cmath>

#include <gtest/gtest.h>

#include "dcrd/distributed_dr.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

MonitoredView PerfectView(const Graph& graph, double gamma = 1.0) {
  std::vector<SimDuration> alphas;
  std::vector<double> gammas;
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    alphas.push_back(
        graph.edge(LinkId(static_cast<LinkId::underlying_type>(e))).delay);
    gammas.push_back(gamma);
  }
  return MonitoredView(std::move(alphas), std::move(gammas));
}

struct ProtocolRun {
  std::vector<NodeTables> tables;
  std::uint64_t updates_sent = 0;
  SimTime converged_at;
};

ProtocolRun RunProtocol(const Graph& graph, const MonitoredView& view,
                        NodeId subscriber, double deadline_us,
                        NodeId publisher, double loss_rate = 0.0,
                        DistributedDrConfig config = {}) {
  ProtocolRun run;
  Scheduler scheduler;
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0),
                         loss_rate, Rng(3));
  std::vector<double> budgets(graph.node_count());
  const auto dist = MonitoredDistancesFrom(graph, view, publisher);
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    budgets[i] = deadline_us - dist[i];
  }
  budgets[subscriber.underlying()] =
      std::max(budgets[subscriber.underlying()], 1.0);
  auto protocol = std::make_shared<DistributedDrComputation>(
      network, subscriber, view, budgets, config);
  protocol->Start();
  scheduler.Run();
  run.tables = protocol->Snapshot();
  run.updates_sent = protocol->updates_sent();
  run.converged_at = protocol->last_change();
  return run;
}

TEST(DistributedDrTest, LineGraphConvergesToExactValues) {
  const Graph graph = Line(4, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  const ProtocolRun run =
      RunProtocol(graph, view, NodeId(3), 1e9, NodeId(0));
  EXPECT_NEAR(run.tables[0].dr.d_us, 30'000.0, 1.0);
  EXPECT_NEAR(run.tables[2].dr.d_us, 10'000.0, 1.0);
  EXPECT_DOUBLE_EQ(run.tables[0].dr.r, 1.0);
}

TEST(DistributedDrTest, MatchesCentralizedSolverOnRandomOverlays) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    const Graph graph = RandomConnected(14, 5, rng);
    const MonitoredView view = PerfectView(graph, 0.92);
    const NodeId subscriber(13), publisher(0);
    const auto dist = MonitoredDistancesFrom(graph, view, publisher);
    const double deadline_us = 3.0 * dist[subscriber.underlying()];

    const ProtocolRun run =
        RunProtocol(graph, view, subscriber, deadline_us, publisher);
    DrComputationConfig central_config;
    central_config.max_sweeps = 256;
    central_config.tolerance_us = 0.01;
    const auto central = ComputeDestinationTables(
        graph, view, subscriber, deadline_us, dist, central_config);

    for (std::size_t v = 0; v < graph.node_count(); ++v) {
      const DR& gossip = run.tables[v].dr;
      const DR& solver = central.per_node[v].dr;
      ASSERT_EQ(gossip.reachable(), solver.reachable())
          << "seed " << seed << " node " << v;
      if (!gossip.reachable()) continue;
      EXPECT_NEAR(gossip.d_us, solver.d_us, 5.0)
          << "seed " << seed << " node " << v;
      EXPECT_NEAR(gossip.r, solver.r, 1e-4)
          << "seed " << seed << " node " << v;
      // And the resulting sending lists agree entry by entry.
      const auto& gossip_list = run.tables[v].primary;
      const auto& solver_list = central.per_node[v].primary;
      ASSERT_EQ(gossip_list.size(), solver_list.size());
      for (std::size_t k = 0; k < gossip_list.size(); ++k) {
        EXPECT_EQ(gossip_list[k].neighbor, solver_list[k].neighbor);
      }
    }
  }
}

TEST(DistributedDrTest, ConvergenceTakesNetworkTime) {
  // Updates travel over real links: convergence cannot beat the monitored
  // distance from the subscriber to the farthest node.
  const Graph graph = Line(5, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  const ProtocolRun run =
      RunProtocol(graph, view, NodeId(4), 1e9, NodeId(0));
  EXPECT_GE(run.converged_at, SimTime::Zero() + SimDuration::Millis(40));
  EXPECT_LT(run.converged_at, SimTime::Zero() + SimDuration::Millis(400));
}

TEST(DistributedDrTest, QuiescesWithBoundedTraffic) {
  // On cyclic overlays the fixed point is approached through a geometric
  // cascade of shrinking updates, so message counts are tolerance-driven:
  // a coarser update threshold must damp the chatter, and even the fine
  // default stays far from runaway (it quiesced at all — Run() returned).
  Rng rng(7);
  const Graph graph = RandomConnected(16, 6, rng);
  const MonitoredView view = PerfectView(graph, 0.9);
  const ProtocolRun fine = RunProtocol(graph, view, NodeId(15), 1e9, NodeId(0));
  DistributedDrConfig coarse_config;
  coarse_config.update_threshold_us = 100.0;
  const ProtocolRun coarse = RunProtocol(graph, view, NodeId(15), 1e9,
                                         NodeId(0), 0.0, coarse_config);
  EXPECT_GT(fine.updates_sent, graph.node_count());
  EXPECT_LT(fine.updates_sent, 50'000U);  // runaway guard
  EXPECT_LT(coarse.updates_sent, fine.updates_sent / 2);
}

TEST(DistributedDrTest, LostUpdatesLeaveStaleStateWithoutAntiEntropy) {
  // With heavy control-plane loss and no rebroadcasts, some node usually
  // ends up stale or unreachable; with anti-entropy the protocol recovers.
  Rng rng(9);
  const Graph graph = RandomConnected(12, 4, rng);
  const MonitoredView view = PerfectView(graph);

  DistributedDrConfig no_repair;
  const ProtocolRun lossy = RunProtocol(graph, view, NodeId(11), 1e9,
                                        NodeId(0), /*loss_rate=*/0.4,
                                        no_repair);
  DistributedDrConfig with_repair;
  with_repair.rebroadcasts = 8;
  const ProtocolRun repaired = RunProtocol(graph, view, NodeId(11), 1e9,
                                           NodeId(0), /*loss_rate=*/0.4,
                                           with_repair);
  std::size_t lossy_reachable = 0, repaired_reachable = 0;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    lossy_reachable += lossy.tables[v].dr.reachable() ? 1 : 0;
    repaired_reachable += repaired.tables[v].dr.reachable() ? 1 : 0;
  }
  EXPECT_GE(repaired_reachable, lossy_reachable);
  EXPECT_EQ(repaired_reachable, graph.node_count());
}

TEST(DistributedDrTest, BudgetFilteringAppliesInFlight) {
  // Tight deadline: the gossip must converge to the same starved lists the
  // solver computes.
  const Graph graph = Line(4, SimDuration::Millis(10));
  const MonitoredView view = PerfectView(graph);
  const std::vector<double> dist = {0.0, 10'000.0, 20'000.0, 30'000.0};
  const double deadline_us = 25'000.0;
  const ProtocolRun run =
      RunProtocol(graph, view, NodeId(3), deadline_us, NodeId(0));
  const auto central = ComputeDestinationTables(graph, view, NodeId(3),
                                                deadline_us, dist, {});
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    EXPECT_EQ(run.tables[v].primary.size(),
              central.per_node[v].primary.size())
        << "node " << v;
  }
}

}  // namespace
}  // namespace dcrd
