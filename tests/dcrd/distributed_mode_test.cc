// DcrdRouter running its control plane for real
// (DcrdConfig::use_distributed_computation).
#include <gtest/gtest.h>

#include "dcrd/dcrd_router.h"
#include "graph/topology.h"
#include "routing/test_harness.h"
#include "sim/engine.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

TEST(DistributedModeTest, DeliversAfterConvergenceWindow) {
  RouterHarness h(Line(4, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(200));
  DcrdConfig config;
  config.use_distributed_computation = true;
  DcrdRouter router(h.Context(), config);
  router.Rebuild(h.monitor.view());
  // Let the gossip converge (3 hops x 10 ms and change).
  h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Millis(200));

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(3)),
            SimTime::FromMicros(200'000) + SimDuration::Millis(30));
  EXPECT_GT(h.network.counters(TrafficClass::kControl).attempted, 0U);
}

TEST(DistributedModeTest, PublishBeforeConvergenceIsDropped) {
  // Publishing at t=0, the instant Rebuild injected <0,1> at the
  // subscriber, the publisher has heard nothing yet: the packet has
  // nowhere to go. This is the honest cost of a real control plane.
  RouterHarness h(Line(4, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(200));
  DcrdConfig config;
  config.use_distributed_computation = true;
  DcrdRouter router(h.Context(), config);
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(3)));
  EXPECT_EQ(router.dropped_undeliverable(), 1U);
}

TEST(DistributedModeTest, EndToEndMatchesCentralizedShape) {
  // Whole-system: distributed mode under failures must deliver essentially
  // like solver mode (publish phases start well after the ~100 ms
  // convergence window) while emitting control traffic.
  ScenarioConfig central;
  central.router = RouterKind::kDcrd;
  central.node_count = 15;
  central.degree = 5;
  central.topic_count = 4;
  central.failure_probability = 0.06;
  central.sim_time = SimDuration::Seconds(60);
  central.seed = 3;
  ScenarioConfig distributed = central;
  distributed.dcrd_distributed = true;

  const RunSummary central_summary = RunScenario(central);
  const RunSummary distributed_summary = RunScenario(distributed);
  EXPECT_EQ(central_summary.control_transmissions, 0U);
  EXPECT_GT(distributed_summary.control_transmissions, 1000U);
  EXPECT_GT(distributed_summary.delivery_ratio(), 0.98);
  EXPECT_NEAR(distributed_summary.qos_ratio(), central_summary.qos_ratio(),
              0.03);
}

TEST(DistributedModeTest, DeterministicAcrossRuns) {
  ScenarioConfig config;
  config.router = RouterKind::kDcrd;
  config.dcrd_distributed = true;
  config.node_count = 12;
  config.degree = 4;
  config.topic_count = 3;
  config.failure_probability = 0.05;
  config.sim_time = SimDuration::Seconds(30);
  config.seed = 8;
  const RunSummary a = RunScenario(config);
  const RunSummary b = RunScenario(config);
  EXPECT_EQ(a.delivered_pairs, b.delivered_pairs);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_EQ(a.data_transmissions, b.data_transmissions);
}

TEST(DistributedModeTest, EpochTurnoverRetiresOldGossip) {
  // Two rebuilds in quick succession: stragglers from the first epoch's
  // protocols must not corrupt the second (no crash, state consistent,
  // message still deliverable afterwards).
  RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(200));
  DcrdConfig config;
  config.use_distributed_computation = true;
  DcrdRouter router(h.Context(), config);
  router.Rebuild(h.monitor.view());
  // Mid-convergence rebuild: first epoch's updates still in flight.
  h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Millis(5));
  router.Rebuild(h.monitor.view());
  h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Millis(200));
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
}

TEST(DistributedModeTest, SolverTableAccessorGuarded) {
  RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(200));
  DcrdConfig config;
  config.use_distributed_computation = true;
  DcrdRouter router(h.Context(), config);
  router.Rebuild(h.monitor.view());
  EXPECT_DEATH((void)router.TablesFor(topic, NodeId(2)),
               "not materialised in distributed mode");
}

}  // namespace
}  // namespace dcrd
