// Exhaustive verification of Theorem 1: over random instances with up to 8
// neighbours, the d/r-ascending order achieves the minimum expected delay
// d_X among ALL n! permutations — and the optimum equals Eq. 3 evaluated on
// the sorted order. Parameterised over instance sizes so each size reports
// separately.
#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcrd/dr.h"

namespace dcrd {
namespace {

class Theorem1Test : public ::testing::TestWithParam<int> {};

std::vector<ViaEntry> RandomInstance(Rng& rng, int n) {
  std::vector<ViaEntry> entries;
  for (int i = 0; i < n; ++i) {
    entries.push_back(ViaEntry{NodeId(static_cast<std::uint32_t>(i)),
                               LinkId(static_cast<std::uint32_t>(i)),
                               rng.NextDoubleInRange(1'000, 100'000),
                               rng.NextDoubleInRange(0.05, 1.0)});
  }
  return entries;
}

double BruteForceMinimum(std::vector<ViaEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ViaEntry& a, const ViaEntry& b) {
              return a.neighbor < b.neighbor;
            });
  double best = kInfiniteDelay;
  do {
    best = std::min(best, ExpectedDelayOfOrder(entries));
  } while (std::next_permutation(
      entries.begin(), entries.end(),
      [](const ViaEntry& a, const ViaEntry& b) {
        return a.neighbor < b.neighbor;
      }));
  return best;
}

TEST_P(Theorem1Test, SortedOrderIsGloballyOptimal) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  const int trials = n <= 6 ? 40 : 10;  // 8! = 40320 permutations per trial
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<ViaEntry> entries = RandomInstance(rng, n);
    const double brute = BruteForceMinimum(entries);
    SortByTheorem1(entries);
    const double theorem = ExpectedDelayOfOrder(entries);
    EXPECT_NEAR(theorem, brute, std::abs(brute) * 1e-12 + 1e-9)
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(Theorem1Test, OptimalityConditionHoldsOnSortedOrder) {
  // Eq. 5: d^k/r^k <= d^{k+1}/r^{k+1} for every adjacent pair.
  const int n = GetParam();
  Rng rng(2000 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ViaEntry> entries = RandomInstance(rng, n);
    SortByTheorem1(entries);
    for (int k = 0; k + 1 < n; ++k) {
      EXPECT_LE(entries[k].d_via_us * entries[k + 1].r_via,
                entries[k + 1].d_via_us * entries[k].r_via + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, Theorem1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Theorem1EdgeCases, DegenerateEqualRatios) {
  // All entries share the same d/r: every order gives the same d.
  std::vector<ViaEntry> entries;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const double r = 0.2 + 0.15 * i;
    entries.push_back(ViaEntry{NodeId(i), LinkId(i), 40'000 * r, r});
  }
  const double sorted_d = [&] {
    auto copy = entries;
    SortByTheorem1(copy);
    return ExpectedDelayOfOrder(copy);
  }();
  std::sort(entries.begin(), entries.end(),
            [](const ViaEntry& a, const ViaEntry& b) {
              return a.neighbor < b.neighbor;
            });
  do {
    EXPECT_NEAR(ExpectedDelayOfOrder(entries), sorted_d, 1e-6);
  } while (std::next_permutation(
      entries.begin(), entries.end(),
      [](const ViaEntry& a, const ViaEntry& b) {
        return a.neighbor < b.neighbor;
      }));
}

TEST(Theorem1EdgeCases, HighReliabilityShortDelayFirst) {
  // A fast reliable neighbour must always lead the list.
  std::vector<ViaEntry> entries = {
      ViaEntry{NodeId(0), LinkId(0), 50'000, 0.5},
      ViaEntry{NodeId(1), LinkId(1), 10'000, 0.99},
      ViaEntry{NodeId(2), LinkId(2), 80'000, 0.9},
  };
  SortByTheorem1(entries);
  EXPECT_EQ(entries[0].neighbor, NodeId(1));
}

}  // namespace
}  // namespace dcrd
