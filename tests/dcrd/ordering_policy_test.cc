// Ordering-policy ablation machinery (SortByPolicy) and its effect on the
// computed <d,r> tables.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcrd/dr.h"
#include "dcrd/dr_computation.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

ViaEntry Entry(std::uint32_t id, double d, double r) {
  return ViaEntry{NodeId(id), LinkId(id), d, r};
}

TEST(OrderingPolicyTest, DelayFirstSortsByD) {
  std::vector<ViaEntry> entries = {Entry(1, 30'000, 0.99),
                                   Entry(2, 10'000, 0.40),
                                   Entry(3, 20'000, 0.80)};
  SortByPolicy(entries, OrderingPolicy::kDelayFirst);
  EXPECT_EQ(entries[0].neighbor, NodeId(2));
  EXPECT_EQ(entries[1].neighbor, NodeId(3));
  EXPECT_EQ(entries[2].neighbor, NodeId(1));
}

TEST(OrderingPolicyTest, ReliabilityFirstSortsByRDescending) {
  std::vector<ViaEntry> entries = {Entry(1, 30'000, 0.99),
                                   Entry(2, 10'000, 0.40),
                                   Entry(3, 20'000, 0.80)};
  SortByPolicy(entries, OrderingPolicy::kReliabilityFirst);
  EXPECT_EQ(entries[0].neighbor, NodeId(1));
  EXPECT_EQ(entries[1].neighbor, NodeId(3));
  EXPECT_EQ(entries[2].neighbor, NodeId(2));
}

TEST(OrderingPolicyTest, Theorem1DelegatesToProvenSort) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ViaEntry> entries;
    for (std::uint32_t i = 0; i < 6; ++i) {
      entries.push_back(Entry(i, rng.NextDoubleInRange(1'000, 90'000),
                              rng.NextDoubleInRange(0.05, 1.0)));
    }
    auto by_policy = entries;
    SortByPolicy(by_policy, OrderingPolicy::kTheorem1);
    SortByTheorem1(entries);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(by_policy[i].neighbor, entries[i].neighbor);
    }
  }
}

TEST(OrderingPolicyTest, UnreachableEntriesAlwaysLast) {
  for (const OrderingPolicy policy :
       {OrderingPolicy::kTheorem1, OrderingPolicy::kDelayFirst,
        OrderingPolicy::kReliabilityFirst}) {
    std::vector<ViaEntry> entries = {Entry(1, kInfiniteDelay, 0.0),
                                     Entry(2, 10'000, 0.5)};
    SortByPolicy(entries, policy);
    EXPECT_EQ(entries[0].neighbor, NodeId(2));
    EXPECT_EQ(entries[1].neighbor, NodeId(1));
  }
}

TEST(OrderingPolicyTest, Theorem1NeverWorseInExpectedDelay) {
  // Over random instances, Eq. 3 under Theorem-1 order <= Eq. 3 under
  // either alternative order.
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<ViaEntry> entries;
    const int n = static_cast<int>(rng.NextInRange(2, 7));
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n); ++i) {
      entries.push_back(Entry(i, rng.NextDoubleInRange(1'000, 90'000),
                              rng.NextDoubleInRange(0.05, 1.0)));
    }
    auto theorem = entries, delay = entries, reliability = entries;
    SortByPolicy(theorem, OrderingPolicy::kTheorem1);
    SortByPolicy(delay, OrderingPolicy::kDelayFirst);
    SortByPolicy(reliability, OrderingPolicy::kReliabilityFirst);
    const double best = ExpectedDelayOfOrder(theorem);
    EXPECT_LE(best, ExpectedDelayOfOrder(delay) + 1e-6);
    EXPECT_LE(best, ExpectedDelayOfOrder(reliability) + 1e-6);
  }
}

TEST(OrderingPolicyTest, PolicyChangesComputedTables) {
  // On a graph with a reliable-slow vs flaky-fast choice, the policies must
  // produce different list heads at the publisher.
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(30));  // slow
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(30));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(5));   // fast
  graph.AddEdge(NodeId(2), NodeId(3), SimDuration::Millis(5));
  std::vector<SimDuration> alphas;
  std::vector<double> gammas = {0.99, 0.99, 0.30, 0.30};  // fast is flaky
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    alphas.push_back(graph.edge(LinkId(static_cast<LinkId::underlying_type>(e))).delay);
  }
  const MonitoredView view(alphas, gammas);
  const auto dist = MonitoredDistancesFrom(graph, view, NodeId(0));

  DrComputationConfig delay_config, reliability_config;
  delay_config.ordering = OrderingPolicy::kDelayFirst;
  reliability_config.ordering = OrderingPolicy::kReliabilityFirst;
  const auto by_delay =
      ComputeDestinationTables(graph, view, NodeId(3), 1e9, dist, delay_config);
  const auto by_reliability = ComputeDestinationTables(
      graph, view, NodeId(3), 1e9, dist, reliability_config);

  ASSERT_FALSE(by_delay.per_node[0].primary.empty());
  ASSERT_FALSE(by_reliability.per_node[0].primary.empty());
  EXPECT_EQ(by_delay.per_node[0].primary[0].neighbor, NodeId(2));
  EXPECT_EQ(by_reliability.per_node[0].primary[0].neighbor, NodeId(1));
}

}  // namespace
}  // namespace dcrd
