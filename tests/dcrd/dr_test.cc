#include "dcrd/dr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcrd {
namespace {

ViaEntry Entry(std::uint32_t id, double d, double r) {
  return ViaEntry{NodeId(id), LinkId(id), d, r};
}

TEST(LiftAcrossLinkTest, AppliesEquationTwo) {
  // Eq. 2: d_via = alpha^(m) + d_i, r_via = gamma^(m) * r_i.
  const LinkModel link{12'000.0, 0.8};
  const DR dr_i{30'000.0, 0.9};
  const ViaEntry entry = LiftAcrossLink(NodeId(4), LinkId(2), link, dr_i);
  EXPECT_DOUBLE_EQ(entry.d_via_us, 42'000.0);
  EXPECT_DOUBLE_EQ(entry.r_via, 0.72);
  EXPECT_EQ(entry.neighbor, NodeId(4));
  EXPECT_EQ(entry.link, LinkId(2));
}

TEST(CombineOrderedTest, SingleEntry) {
  const DR dr = CombineOrdered({Entry(1, 10'000, 0.5)});
  EXPECT_DOUBLE_EQ(dr.d_us, 10'000.0);
  EXPECT_DOUBLE_EQ(dr.r, 0.5);
}

TEST(CombineOrderedTest, TwoEntriesMatchHandComputation) {
  // Eq. 3 by hand: d = [d1 r1 + (d1+d2)(1-r1) r2] / [1-(1-r1)(1-r2)].
  const double d1 = 10'000, r1 = 0.6, d2 = 20'000, r2 = 0.5;
  const DR dr = CombineOrdered({Entry(1, d1, r1), Entry(2, d2, r2)});
  const double expected_r = 1 - (1 - r1) * (1 - r2);
  const double expected_d =
      (d1 * r1 + (d1 + d2) * (1 - r1) * r2) / expected_r;
  EXPECT_NEAR(dr.r, expected_r, 1e-12);
  EXPECT_NEAR(dr.d_us, expected_d, 1e-9);
}

TEST(CombineOrderedTest, EmptyListUnreachable) {
  const DR dr = CombineOrdered({});
  EXPECT_FALSE(dr.reachable());
  EXPECT_TRUE(std::isinf(dr.d_us));
}

TEST(CombineOrderedTest, OrderDoesNotChangeR) {
  // Section III-C: "the ordering of the nodes on the list does not affect
  // the delivery ratio r_X".
  std::vector<ViaEntry> entries = {Entry(1, 10'000, 0.3), Entry(2, 5'000, 0.7),
                                   Entry(3, 50'000, 0.9)};
  const DR forward = CombineOrdered(entries);
  std::reverse(entries.begin(), entries.end());
  const DR backward = CombineOrdered(entries);
  EXPECT_NEAR(forward.r, backward.r, 1e-12);
  EXPECT_NE(forward.d_us, backward.d_us);
}

TEST(CombineOrderedTest, SkipsUnreachableEntries) {
  const DR with_dead = CombineOrdered(
      {Entry(1, 10'000, 0.5), Entry(2, kInfiniteDelay, 0.0)});
  const DR without = CombineOrdered({Entry(1, 10'000, 0.5)});
  EXPECT_DOUBLE_EQ(with_dead.d_us, without.d_us);
  EXPECT_DOUBLE_EQ(with_dead.r, without.r);
}

TEST(CombineOrderedTest, RNeverExceedsOne) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ViaEntry> entries;
    const int n = static_cast<int>(rng.NextInRange(1, 8));
    for (int i = 0; i < n; ++i) {
      entries.push_back(Entry(static_cast<std::uint32_t>(i),
                              rng.NextDoubleInRange(1'000, 90'000),
                              rng.NextDoubleInRange(0.01, 1.0)));
    }
    const DR dr = CombineOrdered(entries);
    EXPECT_GT(dr.r, 0.0);
    EXPECT_LE(dr.r, 1.0 + 1e-12);
    EXPECT_GE(dr.d_us, entries.front().d_via_us - 1e-9);
  }
}

TEST(CombineOrderedTest, PerfectFirstEntryShadowsRest) {
  // r1 = 1: later entries contribute nothing.
  const DR dr =
      CombineOrdered({Entry(1, 10'000, 1.0), Entry(2, 1'000, 0.9)});
  EXPECT_DOUBLE_EQ(dr.d_us, 10'000.0);
  EXPECT_DOUBLE_EQ(dr.r, 1.0);
}

TEST(SortByTheorem1Test, SortsByDOverR) {
  // d/r keys: 20k/0.4=50k, 30k/0.9≈33.3k, 10k/0.25=40k → order 2,3,1.
  std::vector<ViaEntry> entries = {Entry(1, 20'000, 0.4),
                                   Entry(2, 30'000, 0.9),
                                   Entry(3, 10'000, 0.25)};
  SortByTheorem1(entries);
  EXPECT_EQ(entries[0].neighbor, NodeId(2));
  EXPECT_EQ(entries[1].neighbor, NodeId(3));
  EXPECT_EQ(entries[2].neighbor, NodeId(1));
}

TEST(SortByTheorem1Test, TieBreaksByNeighborId) {
  std::vector<ViaEntry> entries = {Entry(5, 10'000, 0.5),
                                   Entry(2, 20'000, 1.0)};
  SortByTheorem1(entries);  // equal d/r = 20k
  EXPECT_EQ(entries[0].neighbor, NodeId(2));
  EXPECT_EQ(entries[1].neighbor, NodeId(5));
}

TEST(SortByTheorem1Test, UnreachableEntriesGoLast) {
  std::vector<ViaEntry> entries = {Entry(1, kInfiniteDelay, 0.0),
                                   Entry(2, 10'000, 0.5),
                                   Entry(3, 5'000, 0.0)};
  SortByTheorem1(entries);
  EXPECT_EQ(entries[0].neighbor, NodeId(2));
  // The two dead entries keep relative order (stable partition).
  EXPECT_EQ(entries[1].neighbor, NodeId(1));
  EXPECT_EQ(entries[2].neighbor, NodeId(3));
}

TEST(SortByTheorem1Test, SortedOrderMinimizesAmongAdjacentSwaps) {
  // The proof's exchange argument: swapping any adjacent pair of the sorted
  // order cannot decrease d.
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ViaEntry> entries;
    const int n = static_cast<int>(rng.NextInRange(2, 7));
    for (int i = 0; i < n; ++i) {
      entries.push_back(Entry(static_cast<std::uint32_t>(i),
                              rng.NextDoubleInRange(1'000, 90'000),
                              rng.NextDoubleInRange(0.05, 1.0)));
    }
    SortByTheorem1(entries);
    const double best = ExpectedDelayOfOrder(entries);
    for (int k = 0; k + 1 < n; ++k) {
      auto swapped = entries;
      std::swap(swapped[k], swapped[k + 1]);
      EXPECT_GE(ExpectedDelayOfOrder(swapped), best - 1e-6);
    }
  }
}

}  // namespace
}  // namespace dcrd
