// Monte-Carlo validation of the <d,r> algebra: simulate the actual
// "try neighbours in order, each hop an independent Bernoulli" process the
// equations model and compare the empirical conditional delay and success
// probability against Eq. 3 (and against Eq. 1 + Eq. 2 composition).
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcrd/dr.h"

namespace dcrd {
namespace {

struct Empirical {
  double mean_delay_us = 0.0;
  double success_rate = 0.0;
};

// One trial of the Eq. 3 process: walk the ordered entries; entry i
// succeeds with probability r_via and then costs the prefix sum of d_via
// (the paper charges the full expected delay of every failed attempt plus
// the successful one).
Empirical SimulateOrderedProcess(const std::vector<ViaEntry>& entries,
                                 int trials, Rng& rng) {
  double total_delay = 0.0;
  std::uint64_t successes = 0;
  for (int t = 0; t < trials; ++t) {
    double elapsed = 0.0;
    for (const ViaEntry& entry : entries) {
      elapsed += entry.d_via_us;
      if (rng.NextBernoulli(entry.r_via)) {
        total_delay += elapsed;
        ++successes;
        break;
      }
    }
  }
  Empirical result;
  result.success_rate = static_cast<double>(successes) / trials;
  result.mean_delay_us = successes == 0 ? 0.0 : total_delay / successes;
  return result;
}

TEST(DrMonteCarloTest, CombineOrderedMatchesSimulatedProcess) {
  Rng rng(99);
  for (int instance = 0; instance < 10; ++instance) {
    std::vector<ViaEntry> entries;
    const int n = static_cast<int>(rng.NextInRange(1, 6));
    for (int i = 0; i < n; ++i) {
      entries.push_back(ViaEntry{NodeId(static_cast<std::uint32_t>(i)),
                                 LinkId(static_cast<std::uint32_t>(i)),
                                 rng.NextDoubleInRange(5'000, 50'000),
                                 rng.NextDoubleInRange(0.2, 0.95)});
    }
    const DR analytic = CombineOrdered(entries);
    const Empirical empirical =
        SimulateOrderedProcess(entries, 300'000, rng);
    EXPECT_NEAR(empirical.success_rate, analytic.r, 0.005)
        << "instance " << instance;
    EXPECT_NEAR(empirical.mean_delay_us / analytic.d_us, 1.0, 0.01)
        << "instance " << instance;
  }
}

TEST(DrMonteCarloTest, LiftedLinkMatchesTwoStageProcess) {
  // Eq. 1 composed with Eq. 2: a hop with per-transmission success gamma
  // retried up to m times, then the downstream <d_i, r_i> process.
  Rng rng(7);
  const double alpha_us = 12'000.0, gamma = 0.6;
  const int m = 3;
  const DR downstream{40'000.0, 0.8};

  const LinkModel lifted =
      MTransmissionModel(LinkModel{alpha_us, gamma}, m);
  const ViaEntry entry =
      LiftAcrossLink(NodeId(1), LinkId(0), lifted, downstream);

  double total_delay = 0.0;
  std::uint64_t successes = 0;
  const int trials = 400'000;
  for (int t = 0; t < trials; ++t) {
    // Hop stage: k-th transmission succeeds with prob gamma.
    int k = 0;
    bool hop_ok = false;
    for (k = 1; k <= m; ++k) {
      if (rng.NextBernoulli(gamma)) {
        hop_ok = true;
        break;
      }
    }
    if (!hop_ok) continue;
    // Downstream stage.
    if (!rng.NextBernoulli(downstream.r)) continue;
    total_delay += k * alpha_us + downstream.d_us;
    ++successes;
  }
  EXPECT_NEAR(static_cast<double>(successes) / trials, entry.r_via, 0.005);
  EXPECT_NEAR((total_delay / successes) / entry.d_via_us, 1.0, 0.01);
}

}  // namespace
}  // namespace dcrd
