#include "dcrd/link_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcrd {
namespace {

TEST(LinkModelTest, MEqualsOneIsIdentity) {
  const LinkModel single{25'000.0, 0.9};
  const LinkModel lifted = MTransmissionModel(single, 1);
  EXPECT_DOUBLE_EQ(lifted.alpha_us, 25'000.0);
  EXPECT_DOUBLE_EQ(lifted.gamma, 0.9);
}

TEST(LinkModelTest, GammaFollowsClosedForm) {
  // Eq. 1: gamma^(m) = 1 - (1-gamma)^m.
  const LinkModel single{10'000.0, 0.7};
  for (int m = 1; m <= 6; ++m) {
    const LinkModel lifted = MTransmissionModel(single, m);
    EXPECT_NEAR(lifted.gamma, 1.0 - std::pow(0.3, m), 1e-12) << "m=" << m;
  }
}

TEST(LinkModelTest, AlphaMatchesDirectExpectation) {
  // alpha^(m) = E[k * alpha | success within m] computed directly.
  const double alpha = 20'000.0, gamma = 0.6;
  for (int m = 1; m <= 5; ++m) {
    double numerator = 0.0, mass = 0.0;
    for (int k = 1; k <= m; ++k) {
      const double pk = gamma * std::pow(1 - gamma, k - 1);
      numerator += k * alpha * pk;
      mass += pk;
    }
    const LinkModel lifted = MTransmissionModel(LinkModel{alpha, gamma}, m);
    EXPECT_NEAR(lifted.alpha_us, numerator / mass, 1e-9) << "m=" << m;
    EXPECT_NEAR(lifted.gamma, mass, 1e-12);
  }
}

TEST(LinkModelTest, PerfectLinkNeverRetransmits) {
  const LinkModel lifted = MTransmissionModel(LinkModel{15'000.0, 1.0}, 5);
  EXPECT_DOUBLE_EQ(lifted.alpha_us, 15'000.0);
  EXPECT_DOUBLE_EQ(lifted.gamma, 1.0);
}

TEST(LinkModelTest, DeadLinkStaysDead) {
  const LinkModel lifted = MTransmissionModel(LinkModel{15'000.0, 0.0}, 5);
  EXPECT_EQ(lifted.gamma, 0.0);
  EXPECT_TRUE(std::isinf(lifted.alpha_us));
}

TEST(LinkModelTest, MoreTransmissionsMonotonic) {
  // gamma^(m) increases with m; alpha^(m) increases too (later successes
  // weigh in).
  const LinkModel single{30'000.0, 0.5};
  LinkModel previous = MTransmissionModel(single, 1);
  for (int m = 2; m <= 8; ++m) {
    const LinkModel current = MTransmissionModel(single, m);
    EXPECT_GT(current.gamma, previous.gamma);
    EXPECT_GT(current.alpha_us, previous.alpha_us);
    previous = current;
  }
}

TEST(LinkModelTest, AlphaBoundedByWorstCase) {
  // alpha^(m) is a convex combination of {1..m} * alpha.
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const double alpha = rng.NextDoubleInRange(1'000, 100'000);
    const double gamma = rng.NextDoubleInRange(0.05, 1.0);
    const int m = static_cast<int>(rng.NextInRange(1, 6));
    const LinkModel lifted = MTransmissionModel(LinkModel{alpha, gamma}, m);
    EXPECT_GE(lifted.alpha_us, alpha - 1e-9);
    EXPECT_LE(lifted.alpha_us, m * alpha + 1e-9);
    EXPECT_GE(lifted.gamma, gamma - 1e-12);
  }
}

TEST(LinkModelTest, MonteCarloAgreement) {
  // Simulate the retransmission process and compare the conditional mean.
  const double alpha = 10'000.0, gamma = 0.4;
  const int m = 3;
  Rng rng(17);
  double total = 0.0;
  std::uint64_t successes = 0;
  const int trials = 200'000;
  for (int t = 0; t < trials; ++t) {
    for (int k = 1; k <= m; ++k) {
      if (rng.NextBernoulli(gamma)) {
        total += k * alpha;
        ++successes;
        break;
      }
    }
  }
  const LinkModel lifted = MTransmissionModel(LinkModel{alpha, gamma}, m);
  EXPECT_NEAR(total / successes, lifted.alpha_us, 100.0);
  EXPECT_NEAR(static_cast<double>(successes) / trials, lifted.gamma, 0.005);
}

TEST(LinkModelDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(MTransmissionModel(LinkModel{1.0, 0.5}, 0), "");
  EXPECT_DEATH(MTransmissionModel(LinkModel{1.0, 1.5}, 1), "");
}

}  // namespace
}  // namespace dcrd
