// Integration tests: whole-stack scenarios exercising the evaluation
// pipeline the figure binaries use, at reduced scale.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace dcrd {
namespace {

ScenarioConfig PaperScenario() {
  ScenarioConfig config;
  config.node_count = 20;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 8;
  config.topic_count = 10;
  config.sim_time = SimDuration::Seconds(60);
  config.seed = 2;
  return config;
}

RunSummary RunCase(RouterKind router, double pf, std::uint64_t seed = 2,
               SimDuration sim_time = SimDuration::Seconds(60)) {
  ScenarioConfig config = PaperScenario();
  config.router = router;
  config.failure_probability = pf;
  config.seed = seed;
  config.sim_time = sim_time;
  return RunScenario(config);
}

TEST(EndToEndTest, DcrdDeliversNearlyEverythingUnderFailures) {
  const RunSummary summary = RunCase(RouterKind::kDcrd, 0.06);
  EXPECT_GT(summary.delivery_ratio(), 0.99);
  EXPECT_GT(summary.qos_ratio(), 0.93);
}

TEST(EndToEndTest, OracleDominatesEveryProtocol) {
  const RunSummary oracle = RunCase(RouterKind::kOracle, 0.08);
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kRTree, RouterKind::kDTree,
        RouterKind::kMultipath}) {
    const RunSummary other = RunCase(router, 0.08);
    EXPECT_GE(oracle.qos_ratio() + 1e-9, other.qos_ratio())
        << RouterName(router);
  }
}

TEST(EndToEndTest, DcrdBeatsFixedRoutesUnderFailures) {
  const RunSummary dcrd = RunCase(RouterKind::kDcrd, 0.08);
  const RunSummary rtree = RunCase(RouterKind::kRTree, 0.08);
  const RunSummary dtree = RunCase(RouterKind::kDTree, 0.08);
  const RunSummary multipath = RunCase(RouterKind::kMultipath, 0.08);
  EXPECT_GT(dcrd.delivery_ratio(), rtree.delivery_ratio());
  EXPECT_GT(dcrd.delivery_ratio(), dtree.delivery_ratio());
  EXPECT_GT(dcrd.qos_ratio(), rtree.qos_ratio());
  EXPECT_GT(dcrd.qos_ratio(), dtree.qos_ratio());
  // Our Multipath picks genuinely link-disjoint path pairs, so it is
  // stronger than the paper's (see EXPERIMENTS.md): DCRD matches its QoS
  // ratio within noise while delivering strictly more messages on less
  // than 60% of its traffic.
  EXPECT_GT(dcrd.delivery_ratio(), multipath.delivery_ratio());
  EXPECT_GT(dcrd.qos_ratio(), multipath.qos_ratio() - 0.01);
  EXPECT_LT(dcrd.packets_per_subscriber(),
            0.6 * multipath.packets_per_subscriber());
}

TEST(EndToEndTest, TrafficOrderingMatchesPaper) {
  // Multipath sends the most; DCRD sends more than the trees under
  // failures (it pays for discovery); ACK traffic exists for everyone.
  const RunSummary dcrd = RunCase(RouterKind::kDcrd, 0.06);
  const RunSummary dtree = RunCase(RouterKind::kDTree, 0.06);
  const RunSummary multipath = RunCase(RouterKind::kMultipath, 0.06);
  EXPECT_GT(multipath.packets_per_subscriber(),
            dcrd.packets_per_subscriber());
  EXPECT_GT(dcrd.packets_per_subscriber(), dtree.packets_per_subscriber());
}

TEST(EndToEndTest, FailureSweepMonotonicallyHurtsTrees) {
  double previous = 1.1;
  for (const double pf : {0.0, 0.04, 0.10}) {
    const double ratio = RunCase(RouterKind::kDTree, pf).delivery_ratio();
    EXPECT_LT(ratio, previous + 1e-9) << "Pf=" << pf;
    previous = ratio;
  }
}

TEST(EndToEndTest, LooserDeadlinesImproveDcrdQos) {
  ScenarioConfig tight = PaperScenario();
  tight.router = RouterKind::kDcrd;
  tight.failure_probability = 0.06;
  tight.qos_factor = 1.2;
  ScenarioConfig loose = tight;
  loose.qos_factor = 4.0;
  EXPECT_GT(RunScenario(loose).qos_ratio(), RunScenario(tight).qos_ratio());
}

TEST(EndToEndTest, LatenessSamplesOnlyFromLateDeliveries) {
  const RunSummary summary = RunCase(RouterKind::kDcrd, 0.08);
  for (const double ratio : summary.lateness_ratios) {
    EXPECT_GT(ratio, 1.0);
  }
  EXPECT_EQ(summary.delivered_pairs - summary.qos_pairs,
            summary.lateness_ratios.size());
}

TEST(EndToEndTest, FullMeshBeatsSparseForEveryone) {
  for (const RouterKind router : {RouterKind::kDcrd, RouterKind::kDTree}) {
    ScenarioConfig mesh = PaperScenario();
    mesh.router = router;
    mesh.topology = TopologyKind::kFullMesh;
    mesh.failure_probability = 0.08;
    ScenarioConfig sparse = PaperScenario();
    sparse.router = router;
    sparse.degree = 3;
    sparse.failure_probability = 0.08;
    EXPECT_GE(RunScenario(mesh).qos_ratio() + 0.02,
              RunScenario(sparse).qos_ratio())
        << RouterName(router);
  }
}

}  // namespace
}  // namespace dcrd
