// Property-based tests over randomized instances (parameterised seeds).
//
//  * Delivery guarantee: on a static snapshot where persistent failures
//    leave at least one publisher->subscriber path, DCRD delivers.
//  * Conservation: delivered pairs never exceed expected pairs; QoS pairs
//    never exceed delivered pairs.
//  * Determinism: identical configs give bit-identical summaries.
#include <gtest/gtest.h>

#include "dcrd/dcrd_router.h"
#include "graph/connectivity.h"
#include "graph/topology.h"
#include "routing/test_harness.h"
#include "sim/engine.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

class SeededPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededPropertyTest, DcrdDeliversWheneverAPathSurvives) {
  // Build a random overlay, then fail a random subset of links
  // *persistently* (every second, via a handcrafted schedule emulated with
  // Pf=1 on selected links by deleting them from the graph instead). If
  // the surviving graph still connects publisher and subscriber, DCRD must
  // deliver; if not, it must drop without livelock.
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const Graph full = RandomConnected(12, 4, rng);

  // Persistent failures == absent links, as far as routing is concerned;
  // build the degraded graph.
  Graph degraded(full.node_count());
  Rng kill_rng = rng.Fork("kill");
  std::size_t kept = 0;
  for (const EdgeSpec& edge : full.edges()) {
    if (!kill_rng.NextBernoulli(0.35)) {
      degraded.AddEdge(edge.a, edge.b, edge.delay);
      ++kept;
    }
  }
  if (kept == 0) return;

  const NodeId publisher(0);
  const NodeId subscriber(11);
  const bool connected =
      ReachableFrom(degraded, publisher)[subscriber.underlying()];

  RouterHarness h(std::move(degraded), 0.0, 0.0, seed);
  const TopicId topic = h.subscriptions.AddTopic(publisher);
  h.subscriptions.AddSubscription(topic, subscriber, SimDuration::Seconds(5));
  DcrdRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();

  EXPECT_EQ(h.sink.Delivered(message.id, subscriber), connected)
      << "seed " << seed;
  EXPECT_TRUE(h.scheduler.empty());
}

TEST_P(SeededPropertyTest, SummaryInvariantsHold) {
  ScenarioConfig config;
  config.router = RouterKind::kDcrd;
  config.node_count = 12;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 4;
  config.topic_count = 4;
  config.failure_probability = 0.08;
  config.loss_rate = 0.01;
  config.sim_time = SimDuration::Seconds(40);
  config.seed = GetParam();
  const RunSummary summary = RunScenario(config);
  EXPECT_LE(summary.delivered_pairs, summary.expected_pairs);
  EXPECT_LE(summary.qos_pairs, summary.delivered_pairs);
  EXPECT_EQ(summary.lateness_ratios.size(),
            summary.delivered_pairs - summary.qos_pairs);
  EXPECT_GT(summary.data_transmissions, 0U);
}

TEST_P(SeededPropertyTest, EveryRouterDeterministic) {
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kRTree, RouterKind::kDTree,
        RouterKind::kOracle, RouterKind::kMultipath}) {
    ScenarioConfig config;
    config.router = router;
    config.node_count = 10;
    config.topology = TopologyKind::kRandomDegree;
    config.degree = 4;
    config.topic_count = 3;
    config.failure_probability = 0.06;
    config.loss_rate = 0.001;
    config.sim_time = SimDuration::Seconds(20);
    config.seed = GetParam();
    const RunSummary a = RunScenario(config);
    const RunSummary b = RunScenario(config);
    EXPECT_EQ(a.delivered_pairs, b.delivered_pairs) << RouterName(router);
    EXPECT_EQ(a.qos_pairs, b.qos_pairs) << RouterName(router);
    EXPECT_EQ(a.data_transmissions, b.data_transmissions)
        << RouterName(router);
    EXPECT_EQ(a.ack_transmissions, b.ack_transmissions) << RouterName(router);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PropertyTest, DcrdNoWorseThanDTreeAcrossSeeds) {
  // Aggregate across seeds: DCRD's pooled delivery ratio under failures
  // beats D-Tree's (per-seed it may tie on lucky schedules).
  RunSummary dcrd_pool, dtree_pool;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const bool is_dcrd : {true, false}) {
      ScenarioConfig config;
      config.router = is_dcrd ? RouterKind::kDcrd : RouterKind::kDTree;
      config.node_count = 14;
      config.topology = TopologyKind::kRandomDegree;
      config.degree = 5;
      config.topic_count = 4;
      config.failure_probability = 0.08;
      config.sim_time = SimDuration::Seconds(40);
      config.seed = seed;
      (is_dcrd ? dcrd_pool : dtree_pool).Absorb(RunScenario(config));
    }
  }
  EXPECT_GT(dcrd_pool.delivery_ratio(), dtree_pool.delivery_ratio());
}

}  // namespace
}  // namespace dcrd
