// Cross-product regression matrix: every router on every (topology, Pf, m)
// combination must uphold the structural invariants — no crashes, no
// impossible ratios, lateness bookkeeping consistent, ACKs bounded by data
// traffic, determinism. Parameterised so each combination reports
// individually.
#include <gtest/gtest.h>

#include "sim/engine.h"

namespace dcrd {
namespace {

struct MatrixCase {
  RouterKind router;
  TopologyKind topology;
  std::size_t degree;
  double pf;
  int m;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = RouterName(c.router);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += c.topology == TopologyKind::kFullMesh
              ? "_mesh"
              : "_deg" + std::to_string(c.degree);
  name += "_pf" + std::to_string(static_cast<int>(c.pf * 100));
  name += "_m" + std::to_string(c.m);
  return name;
}

class RouterMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(RouterMatrixTest, InvariantsHold) {
  const MatrixCase& c = GetParam();
  ScenarioConfig config;
  config.router = c.router;
  config.node_count = 12;
  config.topology = c.topology;
  config.degree = c.degree;
  config.failure_probability = c.pf;
  config.max_transmissions = c.m;
  config.loss_rate = 1e-3;
  config.topic_count = 3;
  config.sim_time = SimDuration::Seconds(25);
  config.seed = 11;

  const RunSummary summary = RunScenario(config);
  EXPECT_GT(summary.messages_published, 0U);
  EXPECT_LE(summary.delivered_pairs, summary.expected_pairs);
  EXPECT_LE(summary.qos_pairs, summary.delivered_pairs);
  EXPECT_EQ(summary.lateness_ratios.size(),
            summary.delivered_pairs - summary.qos_pairs);
  EXPECT_EQ(summary.delay_ms_samples.size(), summary.delivered_pairs);
  for (const double ratio : summary.lateness_ratios) EXPECT_GT(ratio, 1.0);
  // Every data transmission triggers at most one ACK.
  EXPECT_LE(summary.ack_transmissions, summary.data_transmissions);
  // With failures off, everything arrives.
  if (c.pf == 0.0) EXPECT_GT(summary.delivery_ratio(), 0.99);

  // Bit-level determinism per combination.
  const RunSummary again = RunScenario(config);
  EXPECT_EQ(again.delivered_pairs, summary.delivered_pairs);
  EXPECT_EQ(again.data_transmissions, summary.data_transmissions);
}

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (const RouterKind router :
       {RouterKind::kDcrd, RouterKind::kRTree, RouterKind::kDTree,
        RouterKind::kOracle, RouterKind::kMultipath}) {
    for (const double pf : {0.0, 0.08}) {
      for (const int m : {1, 2}) {
        cases.push_back(
            MatrixCase{router, TopologyKind::kRandomDegree, 4, pf, m});
      }
    }
    cases.push_back(MatrixCase{router, TopologyKind::kFullMesh, 0, 0.06, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllRouters, RouterMatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace dcrd
