// Randomized chaos soak: every router × many seeds under simultaneous
// binary link outages, gray failures (partial loss, delay inflation,
// asymmetric degradation), and broker-node failures, with the
// simulation-wide invariant checker armed. Any routing loop, duplicate
// hand-up, counter leak, or leaked pending state across this matrix fails
// the test with the checker's own description of the violation.
//
// A second, DCRD-only pass additionally arms the delivery-guarantee check.
// That check is only sound when non-delivery cannot have a legitimate
// cause, so those runs use zero background loss and no broker failures
// (a down broker legitimately strands copies it already ACKed — the paper
// defers broker failure to future work), and a raised reroute cap so
// finite budgets do not masquerade as protocol bugs.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.h"

namespace dcrd {
namespace {

ScenarioConfig ChaosBase(std::uint64_t seed) {
  ScenarioConfig config;
  config.node_count = 12;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 3;
  config.topic_count = 4;
  config.sim_time = SimDuration::Seconds(30);
  config.monitor_interval = SimDuration::Seconds(5);
  config.publish_interval = SimDuration::Millis(500);
  config.max_transmissions = 2;
  config.seed = seed;
  config.enable_invariant_checker = true;
  // The chaos cocktail: binary outages + gray episodes + node failures.
  config.failure_probability = 0.08;
  config.node_failure_probability = 0.04;
  config.loss_rate = 1e-3;
  config.gray_probability = 0.15;
  config.gray_extra_loss = 0.3;
  config.gray_delay_factor = 3.0;
  config.gray_asymmetry = 0.5;
  // Exercise both timer modes across the seed set.
  config.adaptive_rto = seed % 2 == 0;
  return config;
}

std::string Explain(const RunSummary& summary, RouterKind router,
                    std::uint64_t seed) {
  std::ostringstream os;
  os << RouterName(router) << " seed " << seed << ": "
     << summary.invariant_violation_count << " violations";
  for (const std::string& violation : summary.invariant_violations) {
    os << "\n  " << violation;
  }
  return os.str();
}

TEST(ChaosSoakTest, NoInvariantViolationsAcrossRoutersAndSeeds) {
  constexpr RouterKind kRouters[] = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScenarioConfig config = ChaosBase(seed);
    // Spread the routers across seeds (every router still sees 10 distinct
    // sample paths) to keep the soak's runtime in check.
    config.router = kRouters[seed % 5];
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
    EXPECT_GT(summary.messages_published, 0U);
  }
}

TEST(ChaosSoakTest, AllRoutersSurviveIdenticalSamplePaths) {
  // All five routers on the *same* seeds: the counter-based schedules
  // guarantee each faces the identical outage + gray sample path.
  constexpr RouterKind kRouters[] = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    for (const RouterKind router : kRouters) {
      ScenarioConfig config = ChaosBase(seed);
      config.router = router;
      const RunSummary summary = RunScenario(config);
      EXPECT_EQ(summary.invariant_violation_count, 0U)
          << Explain(summary, router, seed);
    }
  }
}

TEST(ChaosSoakTest, DcrdHonoursDeliveryGuaranteeUnderChaos) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioConfig config = ChaosBase(seed);
    config.router = RouterKind::kDcrd;
    // Soundness preconditions for the guarantee check (see header comment).
    config.loss_rate = 0.0;
    config.node_failure_probability = 0.0;
    config.dcrd_reroute_retry_cap = 500;
    config.check_delivery_guarantee = true;
    config.guarantee_window = SimDuration::Seconds(5);
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
  }
}

TEST(ChaosSoakTest, AdaptiveRtoPreservesInvariantsUnderDelayInflation) {
  // Heavy delay inflation with no loss at all: every retransmission in
  // fixed mode is spurious; adaptive mode must stay correct while
  // suppressing them.
  for (const bool adaptive : {false, true}) {
    ScenarioConfig config = ChaosBase(7);
    config.router = RouterKind::kDcrd;
    config.failure_probability = 0.0;
    config.node_failure_probability = 0.0;
    config.loss_rate = 0.0;
    config.gray_probability = 0.3;
    config.gray_extra_loss = 0.0;
    config.gray_delay_factor = 4.0;
    config.adaptive_rto = adaptive;
    config.max_transmissions = 3;
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, 7);
  }
}

}  // namespace
}  // namespace dcrd
