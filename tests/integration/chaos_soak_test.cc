// Randomized chaos soak: every router × many seeds under simultaneous
// binary link outages, gray failures (partial loss, delay inflation,
// asymmetric degradation), and broker-node failures, with the
// simulation-wide invariant checker armed. Any routing loop, duplicate
// hand-up, counter leak, or leaked pending state across this matrix fails
// the test with the checker's own description of the violation.
//
// A second, DCRD-only pass additionally arms the delivery-guarantee check.
// That check is only sound when non-delivery cannot have a legitimate
// cause, so those runs use zero background loss and no *pause-style* node
// failures (a paused broker strands copies it already ACKed with its state
// intact, which the oracle cannot see), and a raised reroute cap so finite
// budgets do not masquerade as protocol bugs. Fail-stop *crashes* are fine:
// the checker's touched-broker precondition excuses any pair whose packet
// was held by a broker that crashed inside the guarantee window.
//
// A third pass adds the crash–recovery cocktail (broker_mtbf/mttr +
// peer-death detection): restarts void dedup and routing state, so this is
// where unexplained duplicates or post-restart routing bugs would surface.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.h"

namespace dcrd {
namespace {

ScenarioConfig ChaosBase(std::uint64_t seed) {
  ScenarioConfig config;
  config.node_count = 12;
  config.topology = TopologyKind::kRandomDegree;
  config.degree = 3;
  config.topic_count = 4;
  config.sim_time = SimDuration::Seconds(30);
  config.monitor_interval = SimDuration::Seconds(5);
  config.publish_interval = SimDuration::Millis(500);
  config.max_transmissions = 2;
  config.seed = seed;
  config.enable_invariant_checker = true;
  // The chaos cocktail: binary outages + gray episodes + node failures.
  config.failure_probability = 0.08;
  config.node_failure_probability = 0.04;
  config.loss_rate = 1e-3;
  config.gray_probability = 0.15;
  config.gray_extra_loss = 0.3;
  config.gray_delay_factor = 3.0;
  config.gray_asymmetry = 0.5;
  // Exercise both timer modes across the seed set.
  config.adaptive_rto = seed % 2 == 0;
  return config;
}

std::string Explain(const RunSummary& summary, RouterKind router,
                    std::uint64_t seed) {
  std::ostringstream os;
  os << RouterName(router) << " seed " << seed << ": "
     << summary.invariant_violation_count << " violations";
  for (const std::string& violation : summary.invariant_violations) {
    os << "\n  " << violation;
  }
  return os.str();
}

TEST(ChaosSoakTest, NoInvariantViolationsAcrossRoutersAndSeeds) {
  constexpr RouterKind kRouters[] = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScenarioConfig config = ChaosBase(seed);
    // Spread the routers across seeds (every router still sees 10 distinct
    // sample paths) to keep the soak's runtime in check.
    config.router = kRouters[seed % 5];
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
    EXPECT_GT(summary.messages_published, 0U);
  }
}

TEST(ChaosSoakTest, AllRoutersSurviveIdenticalSamplePaths) {
  // All five routers on the *same* seeds: the counter-based schedules
  // guarantee each faces the identical outage + gray sample path.
  constexpr RouterKind kRouters[] = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  for (const std::uint64_t seed : {101ULL, 202ULL}) {
    for (const RouterKind router : kRouters) {
      ScenarioConfig config = ChaosBase(seed);
      config.router = router;
      const RunSummary summary = RunScenario(config);
      EXPECT_EQ(summary.invariant_violation_count, 0U)
          << Explain(summary, router, seed);
    }
  }
}

TEST(ChaosSoakTest, DcrdHonoursDeliveryGuaranteeUnderChaos) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioConfig config = ChaosBase(seed);
    config.router = RouterKind::kDcrd;
    // Soundness preconditions for the guarantee check (see header comment).
    config.loss_rate = 0.0;
    config.node_failure_probability = 0.0;
    config.dcrd_reroute_retry_cap = 500;
    config.check_delivery_guarantee = true;
    config.guarantee_window = SimDuration::Seconds(5);
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
  }
}

ScenarioConfig CrashCocktail(std::uint64_t seed) {
  ScenarioConfig config = ChaosBase(seed);
  // Frequent fail-stop restarts on top of the chaos cocktail: ~13% of
  // broker-epochs down, every restart voiding dedup + routing state.
  config.broker_mtbf = SimDuration::Seconds(20);
  config.broker_mttr = SimDuration::Seconds(3);
  config.peer_death_detection = true;
  return config;
}

TEST(ChaosSoakTest, CrashRecoveryCocktailAcrossRoutersAndSeeds) {
  // 50 seeds spread across the five routers. The crash-aware checker
  // excuses duplicates only when the receiving broker verifiably crashed
  // between the two hand-ups; any other duplicate, loop, or counter leak
  // fails here with the checker's description.
  constexpr RouterKind kRouters[] = {RouterKind::kDcrd, RouterKind::kRTree,
                                     RouterKind::kDTree, RouterKind::kOracle,
                                     RouterKind::kMultipath};
  std::uint64_t total_crashes = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ScenarioConfig config = CrashCocktail(seed);
    config.router = kRouters[seed % 5];
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
    EXPECT_GT(summary.messages_published, 0U);
    total_crashes += summary.broker_crashes;
  }
  // The cocktail must actually exercise the crash machinery.
  EXPECT_GT(total_crashes, 0U);
}

TEST(ChaosSoakTest, DcrdReconvergesAfterEveryRestart) {
  for (const std::uint64_t seed : {3ULL, 14ULL, 27ULL}) {
    ScenarioConfig config = CrashCocktail(seed);
    config.router = RouterKind::kDcrd;
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
    ASSERT_GT(summary.broker_restarts, 0U) << "seed " << seed;
    // Every observed restart opened a resync window, and at least one
    // converged inside the run (the last restart may straddle the end).
    EXPECT_EQ(summary.resyncs_started, summary.broker_restarts);
    EXPECT_GT(summary.resyncs_completed, 0U) << "seed " << seed;
  }
}

TEST(ChaosSoakTest, DcrdDeliveryGuaranteeSoundUnderCrashes) {
  // Guarantee check + fail-stop crashes: sound because the clean-path BFS
  // consults the crash schedule and the touched-broker precondition
  // excuses packets a crashed holder destroyed. Peer-death detection must
  // be OFF here — a stale (or gray-loss-induced) death verdict makes the
  // router skip a link the oracle correctly sees as clean until a probe
  // revives it, legitimately stranding packets; see DESIGN.md §3b.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ScenarioConfig config = CrashCocktail(seed);
    config.router = RouterKind::kDcrd;
    config.loss_rate = 0.0;
    config.node_failure_probability = 0.0;
    config.peer_death_detection = false;
    config.dcrd_reroute_retry_cap = 500;
    config.check_delivery_guarantee = true;
    config.guarantee_window = SimDuration::Seconds(5);
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, seed);
  }
}

TEST(ChaosSoakTest, AdaptiveRtoPreservesInvariantsUnderDelayInflation) {
  // Heavy delay inflation with no loss at all: every retransmission in
  // fixed mode is spurious; adaptive mode must stay correct while
  // suppressing them.
  for (const bool adaptive : {false, true}) {
    ScenarioConfig config = ChaosBase(7);
    config.router = RouterKind::kDcrd;
    config.failure_probability = 0.0;
    config.node_failure_probability = 0.0;
    config.loss_rate = 0.0;
    config.gray_probability = 0.3;
    config.gray_extra_loss = 0.0;
    config.gray_delay_factor = 4.0;
    config.adaptive_rto = adaptive;
    config.max_transmissions = 3;
    const RunSummary summary = RunScenario(config);
    EXPECT_EQ(summary.invariant_violation_count, 0U)
        << Explain(summary, config.router, 7);
  }
}

}  // namespace
}  // namespace dcrd
