// Test-only heap-allocation counters.
//
// Linking alloc_counter.cc into a test binary replaces the global operator
// new/delete family with forwarding implementations that bump thread-local
// counters. Tests then assert *zero* allocations across a hot-path region,
// turning the engine's zero-steady-state-allocation property into a
// regression test instead of a one-off measurement.
//
// Thread-aware: counters are thread_local, so a concurrent sweep worker or
// test runner thread cannot perturb the measuring thread's counts. Only
// binaries that compile alloc_counter.cc get the replaced operators —
// production binaries keep the system allocator untouched.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcrd::test {

struct AllocCounts {
  std::uint64_t allocations = 0;    // operator new/new[] calls
  std::uint64_t deallocations = 0;  // operator delete/delete[] calls
  std::uint64_t bytes = 0;          // total bytes requested

  friend AllocCounts operator-(const AllocCounts& a, const AllocCounts& b) {
    return AllocCounts{a.allocations - b.allocations,
                       a.deallocations - b.deallocations, a.bytes - b.bytes};
  }
};

// Counters of the calling thread since thread start.
AllocCounts CurrentThreadAllocCounts();

// Scoped delta: counts allocations on the constructing thread between
// construction and the delta() call.
class AllocProbe {
 public:
  AllocProbe() : start_(CurrentThreadAllocCounts()) {}
  [[nodiscard]] AllocCounts delta() const {
    return CurrentThreadAllocCounts() - start_;
  }

 private:
  AllocCounts start_;
};

}  // namespace dcrd::test
