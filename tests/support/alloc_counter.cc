#include "support/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace dcrd::test {
namespace {

// Plain struct with no constructor so thread_local init cannot itself
// allocate or recurse through operator new.
thread_local AllocCounts tls_counts;

void* CountedAlloc(std::size_t size, std::size_t alignment) {
  ++tls_counts.allocations;
  tls_counts.bytes += size;
  void* p = alignment <= alignof(std::max_align_t)
                ? std::malloc(size)
                // aligned_alloc requires size % alignment == 0.
                : std::aligned_alloc(alignment,
                                     (size + alignment - 1) / alignment *
                                         alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  ++tls_counts.deallocations;
  std::free(p);
}

}  // namespace

AllocCounts CurrentThreadAllocCounts() { return tls_counts; }

}  // namespace dcrd::test

// Replaceable global allocation functions ([new.delete]); the aligned and
// nothrow forms forward to the same counters so no allocation escapes.
void* operator new(std::size_t size) {
  return dcrd::test::CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return dcrd::test::CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return dcrd::test::CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return dcrd::test::CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return dcrd::test::CountedAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return dcrd::test::CountedAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { dcrd::test::CountedFree(p); }
void operator delete[](void* p) noexcept { dcrd::test::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  dcrd::test::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  dcrd::test::CountedFree(p);
}
