#include "pubsub/subscriptions.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(SubscriptionTableTest, TopicsGetDenseIds) {
  SubscriptionTable table;
  EXPECT_EQ(table.AddTopic(NodeId(3)), TopicId(0));
  EXPECT_EQ(table.AddTopic(NodeId(5)), TopicId(1));
  EXPECT_EQ(table.topic_count(), 2U);
  EXPECT_EQ(table.publisher(TopicId(0)), NodeId(3));
  EXPECT_EQ(table.publisher(TopicId(1)), NodeId(5));
}

TEST(SubscriptionTableTest, SubscriptionsRecorded) {
  SubscriptionTable table;
  const TopicId topic = table.AddTopic(NodeId(0));
  table.AddSubscription(topic, NodeId(1), SimDuration::Millis(90));
  table.AddSubscription(topic, NodeId(2), SimDuration::Millis(120));
  ASSERT_EQ(table.subscriptions(topic).size(), 2U);
  EXPECT_EQ(table.SubscriberNodes(topic),
            (std::vector<NodeId>{NodeId(1), NodeId(2)}));
  EXPECT_TRUE(table.IsSubscribed(topic, NodeId(1)));
  EXPECT_FALSE(table.IsSubscribed(topic, NodeId(3)));
}

TEST(SubscriptionTableTest, DeadlinesPerSubscriber) {
  SubscriptionTable table;
  const TopicId topic = table.AddTopic(NodeId(0));
  table.AddSubscription(topic, NodeId(1), SimDuration::Millis(90));
  table.AddSubscription(topic, NodeId(2), SimDuration::Millis(120));
  EXPECT_EQ(table.Deadline(topic, NodeId(1)), SimDuration::Millis(90));
  EXPECT_EQ(table.Deadline(topic, NodeId(2)), SimDuration::Millis(120));
}

TEST(SubscriptionTableTest, TopicsIndependent) {
  SubscriptionTable table;
  const TopicId a = table.AddTopic(NodeId(0));
  const TopicId b = table.AddTopic(NodeId(1));
  table.AddSubscription(a, NodeId(2), SimDuration::Millis(50));
  EXPECT_TRUE(table.IsSubscribed(a, NodeId(2)));
  EXPECT_FALSE(table.IsSubscribed(b, NodeId(2)));
  EXPECT_TRUE(table.subscriptions(b).empty());
}

TEST(SubscriptionTableDeathTest, DuplicateSubscriptionRejected) {
  SubscriptionTable table;
  const TopicId topic = table.AddTopic(NodeId(0));
  table.AddSubscription(topic, NodeId(1), SimDuration::Millis(90));
  EXPECT_DEATH(
      table.AddSubscription(topic, NodeId(1), SimDuration::Millis(10)),
      "already subscribed");
}

TEST(SubscriptionTableDeathTest, DeadlineForUnknownSubscriberAborts) {
  SubscriptionTable table;
  const TopicId topic = table.AddTopic(NodeId(0));
  EXPECT_DEATH((void)table.Deadline(topic, NodeId(9)), "not subscribed");
}

TEST(SubscriptionTableDeathTest, NonPositiveDeadlineRejected) {
  SubscriptionTable table;
  const TopicId topic = table.AddTopic(NodeId(0));
  EXPECT_DEATH(table.AddSubscription(topic, NodeId(1), SimDuration::Zero()),
               "");
}

}  // namespace
}  // namespace dcrd
