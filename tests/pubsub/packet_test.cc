#include "pubsub/packet.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

Message TestMessage() {
  Message message;
  message.id = MessageId(42);
  message.topic = TopicId(1);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::FromMicros(1000);
  return message;
}

TEST(PacketTest, DestinationsAreSortedAndSearchable) {
  const Packet packet(TestMessage(), {NodeId(5), NodeId(2), NodeId(9)});
  EXPECT_EQ(packet.destinations(),
            (std::vector<NodeId>{NodeId(2), NodeId(5), NodeId(9)}));
  EXPECT_TRUE(packet.IsDestination(NodeId(5)));
  EXPECT_FALSE(packet.IsDestination(NodeId(4)));
}

TEST(PacketTest, RoutingPathStartsEmpty) {
  const Packet packet(TestMessage(), {NodeId(5)});
  EXPECT_TRUE(packet.routing_path().empty());
  EXPECT_FALSE(packet.OnRoutingPath(NodeId(0)));
}

TEST(PacketTest, RecordOnPathAppendsUnconditionally) {
  // Algorithm 2 line 20: every sender stamps itself before every send, so
  // revisits produce duplicate entries — the path's tail is always the
  // last sender.
  Packet packet(TestMessage(), {NodeId(5)});
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(3));
  packet.RecordOnPath(NodeId(0));
  EXPECT_EQ(packet.routing_path(),
            (std::vector<NodeId>{NodeId(0), NodeId(3), NodeId(0)}));
  EXPECT_TRUE(packet.OnRoutingPath(NodeId(3)));
}

TEST(PacketTest, UpstreamLookup) {
  Packet packet(TestMessage(), {NodeId(5)});
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(3));
  packet.RecordOnPath(NodeId(7));
  EXPECT_EQ(packet.UpstreamOf(NodeId(7)), NodeId(3));
  EXPECT_EQ(packet.UpstreamOf(NodeId(3)), NodeId(0));
  // The path head (publisher) has no upstream.
  EXPECT_FALSE(packet.UpstreamOf(NodeId(0)).valid());
  // Nodes not on the path have no upstream either.
  EXPECT_FALSE(packet.UpstreamOf(NodeId(9)).valid());
}

TEST(PacketTest, UpstreamUsesFirstOccurrenceAfterRevisit) {
  // 0 -> 3 -> back to 0 -> 7: node 3's original upstream stays 0, and node
  // 7 (fresh) sees the last sender 0 as path tail.
  Packet packet(TestMessage(), {NodeId(5)});
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(3));
  packet.RecordOnPath(NodeId(0));
  EXPECT_EQ(packet.UpstreamOf(NodeId(3)), NodeId(0));
  EXPECT_EQ(packet.routing_path().back(), NodeId(0));
}

TEST(PacketTest, WithDestinationsKeepsMessageAndPath) {
  Packet packet(TestMessage(), {NodeId(5), NodeId(6)});
  packet.RecordOnPath(NodeId(0));
  packet.set_flow_label(1);
  const Packet narrowed = packet.WithDestinations({NodeId(6)});
  EXPECT_EQ(narrowed.destinations(), (std::vector<NodeId>{NodeId(6)}));
  EXPECT_EQ(narrowed.message().id, MessageId(42));
  EXPECT_EQ(narrowed.routing_path(), packet.routing_path());
  EXPECT_EQ(narrowed.flow_label(), 1);
  // The original is untouched.
  EXPECT_EQ(packet.destinations().size(), 2U);
}

TEST(PacketTest, WithDestinationsSortsNewSet) {
  const Packet packet(TestMessage(), {NodeId(1)});
  const Packet widened = packet.WithDestinations({NodeId(9), NodeId(3)});
  EXPECT_EQ(widened.destinations(),
            (std::vector<NodeId>{NodeId(3), NodeId(9)}));
}

TEST(PacketTest, FlowLabelDefaultsToZero) {
  const Packet packet(TestMessage(), {NodeId(1)});
  EXPECT_EQ(packet.flow_label(), 0);
}

}  // namespace
}  // namespace dcrd
