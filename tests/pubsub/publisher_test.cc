#include "pubsub/publisher.h"

#include <vector>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(PublisherTest, PublishesAtConfiguredInterval) {
  Scheduler scheduler;
  std::vector<SimTime> times;
  Publisher publisher(TopicId(0), NodeId(3), SimDuration::Seconds(1),
                      scheduler,
                      [&](const Message&) { times.push_back(scheduler.now()); });
  std::uint64_t next_id = 0;
  publisher.Start(SimDuration::Millis(250),
                  SimTime::Zero() + SimDuration::Seconds(5), next_id);
  scheduler.Run();
  ASSERT_EQ(times.size(), 5U);  // 0.25, 1.25, 2.25, 3.25, 4.25
  EXPECT_EQ(times.front(), SimTime::FromMicros(250'000));
  EXPECT_EQ(times.back(), SimTime::FromMicros(4'250'000));
  EXPECT_EQ(publisher.published_count(), 5U);
}

TEST(PublisherTest, StopsAtEndTime) {
  Scheduler scheduler;
  int count = 0;
  Publisher publisher(TopicId(0), NodeId(0), SimDuration::Seconds(1),
                      scheduler, [&](const Message&) { ++count; });
  std::uint64_t next_id = 0;
  publisher.Start(SimDuration::Zero(), SimTime::Zero() + SimDuration::Seconds(3),
                  next_id);
  scheduler.Run();
  EXPECT_EQ(count, 4);  // t = 0, 1, 2, 3
  EXPECT_TRUE(scheduler.empty());
}

TEST(PublisherTest, MessagesCarryMetadata) {
  Scheduler scheduler;
  std::vector<Message> messages;
  Publisher publisher(TopicId(7), NodeId(4), SimDuration::Seconds(1),
                      scheduler,
                      [&](const Message& m) { messages.push_back(m); });
  std::uint64_t next_id = 100;
  publisher.Start(SimDuration::Millis(10),
                  SimTime::Zero() + SimDuration::Seconds(2), next_id);
  scheduler.Run();
  ASSERT_EQ(messages.size(), 2U);
  EXPECT_EQ(messages[0].id, MessageId(100));
  EXPECT_EQ(messages[1].id, MessageId(101));
  EXPECT_EQ(messages[0].topic, TopicId(7));
  EXPECT_EQ(messages[0].publisher, NodeId(4));
  EXPECT_EQ(messages[0].publish_time, SimTime::FromMicros(10'000));
  EXPECT_EQ(next_id, 102U);
}

TEST(PublisherTest, SharedIdCounterKeepsIdsUnique) {
  Scheduler scheduler;
  std::vector<std::uint64_t> ids;
  const auto record = [&](const Message& m) { ids.push_back(m.id.value); };
  Publisher a(TopicId(0), NodeId(0), SimDuration::Seconds(1), scheduler,
              record);
  Publisher b(TopicId(1), NodeId(1), SimDuration::Seconds(1), scheduler,
              record);
  std::uint64_t next_id = 0;
  const SimTime end = SimTime::Zero() + SimDuration::Seconds(3);
  a.Start(SimDuration::Millis(100), end, next_id);
  b.Start(SimDuration::Millis(600), end, next_id);
  scheduler.Run();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), next_id);
}

}  // namespace
}  // namespace dcrd
