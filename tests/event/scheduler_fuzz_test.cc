// Randomized differential test: the heap-based Scheduler against a naive
// reference implementation (sorted vector, linear scans). Any divergence in
// execution order, clock values, or cancellation results is a bug in the
// production scheduler.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "event/scheduler.h"

namespace dcrd {
namespace {

// Reference model: O(n) everything, obviously correct.
class ReferenceScheduler {
 public:
  std::uint64_t ScheduleAt(SimTime at, int payload) {
    entries_.push_back(Entry{at, next_seq_, payload, false});
    return next_seq_++;
  }
  bool Cancel(std::uint64_t seq) {
    for (Entry& entry : entries_) {
      if (entry.seq == seq && !entry.cancelled && !entry.executed) {
        entry.cancelled = true;
        return true;
      }
    }
    return false;
  }
  // Executes everything, returning payloads in execution order.
  std::vector<int> Run(SimTime& now) {
    std::vector<int> order;
    while (true) {
      Entry* best = nullptr;
      for (Entry& entry : entries_) {
        if (entry.cancelled || entry.executed) continue;
        if (best == nullptr || entry.at < best->at ||
            (entry.at == best->at && entry.seq < best->seq)) {
          best = &entry;
        }
      }
      if (best == nullptr) break;
      best->executed = true;
      now = best->at;
      order.push_back(best->payload);
    }
    return order;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    int payload;
    bool cancelled = false;
    bool executed = false;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

class SchedulerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzzTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  Scheduler scheduler;
  ReferenceScheduler reference;

  std::vector<int> production_order;
  std::vector<EventHandle> handles;
  std::vector<std::uint64_t> reference_handles;

  const int operations = 400;
  for (int op = 0; op < operations; ++op) {
    if (!handles.empty() && rng.NextBernoulli(0.3)) {
      // Cancel a random prior event; results must agree.
      const std::size_t pick = rng.NextBounded(handles.size());
      EXPECT_EQ(scheduler.Cancel(handles[pick]),
                reference.Cancel(reference_handles[pick]));
    } else {
      const int payload = op;
      const SimTime at =
          SimTime::FromMicros(rng.NextInRange(0, 10'000));
      handles.push_back(scheduler.ScheduleAt(
          at, [payload, &production_order] {
            production_order.push_back(payload);
          }));
      reference_handles.push_back(reference.ScheduleAt(at, payload));
    }
  }

  scheduler.Run();
  SimTime reference_now = SimTime::Zero();
  const std::vector<int> reference_order = reference.Run(reference_now);

  EXPECT_EQ(production_order, reference_order);
  if (!reference_order.empty()) {
    EXPECT_EQ(scheduler.now(), reference_now);
  }
  EXPECT_TRUE(scheduler.empty());
}

TEST_P(SchedulerFuzzTest, InterleavedRunAndScheduleMatches) {
  // Events scheduled from within events, plus cancellations of not-yet-run
  // events from within events.
  Rng rng(GetParam() + 1000);
  Scheduler scheduler;
  std::vector<int> order;
  int spawned = 0;

  std::function<void(int)> spawn = [&](int depth) {
    order.push_back(depth);
    if (depth < 3 && spawned < 500) {
      const int children = static_cast<int>(rng.NextInRange(0, 3));
      for (int c = 0; c < children; ++c) {
        ++spawned;
        scheduler.ScheduleAfter(
            SimDuration::Micros(rng.NextInRange(1, 50)),
            [&spawn, depth] { spawn(depth + 1); });
      }
    }
  };
  for (int i = 0; i < 10; ++i) {
    ++spawned;
    scheduler.ScheduleAfter(SimDuration::Micros(rng.NextInRange(1, 50)),
                            [&spawn] { spawn(0); });
  }
  scheduler.Run();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(spawned));
  EXPECT_TRUE(scheduler.empty());
  // The clock never runs backwards and ends at the last event.
  EXPECT_GE(scheduler.now(), SimTime::Zero());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dcrd
