#include "event/scheduler.h"

#include <vector>

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(SchedulerTest, StartsAtZeroAndEmpty) {
  Scheduler scheduler;
  EXPECT_EQ(scheduler.now(), SimTime::Zero());
  EXPECT_TRUE(scheduler.empty());
  EXPECT_FALSE(scheduler.Step());
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.ScheduleAt(SimTime::FromMicros(30), [&] { order.push_back(3); });
  scheduler.ScheduleAt(SimTime::FromMicros(10), [&] { order.push_back(1); });
  scheduler.ScheduleAt(SimTime::FromMicros(20), [&] { order.push_back(2); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(30));
}

TEST(SchedulerTest, TiesBreakInSchedulingOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    scheduler.ScheduleAt(SimTime::FromMicros(100),
                         [&order, i] { order.push_back(i); });
  }
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, ClockAdvancesDuringExecution) {
  Scheduler scheduler;
  SimTime observed;
  scheduler.ScheduleAfter(SimDuration::Millis(5),
                          [&] { observed = scheduler.now(); });
  scheduler.Run();
  EXPECT_EQ(observed, SimTime::FromMicros(5000));
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler scheduler;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) scheduler.ScheduleAfter(SimDuration::Millis(1), chain);
  };
  scheduler.ScheduleAfter(SimDuration::Millis(1), chain);
  scheduler.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(10'000));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler scheduler;
  bool ran = false;
  const EventHandle handle =
      scheduler.ScheduleAfter(SimDuration::Millis(1), [&] { ran = true; });
  EXPECT_TRUE(scheduler.Cancel(handle));
  scheduler.Run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelTwiceReturnsFalse) {
  Scheduler scheduler;
  const EventHandle handle =
      scheduler.ScheduleAfter(SimDuration::Millis(1), [] {});
  EXPECT_TRUE(scheduler.Cancel(handle));
  EXPECT_FALSE(scheduler.Cancel(handle));
}

TEST(SchedulerTest, CancelAfterExecutionReturnsFalse) {
  Scheduler scheduler;
  const EventHandle handle =
      scheduler.ScheduleAfter(SimDuration::Millis(1), [] {});
  scheduler.Run();
  EXPECT_FALSE(scheduler.Cancel(handle));
}

TEST(SchedulerTest, DefaultHandleCancelIsNoop) {
  Scheduler scheduler;
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(scheduler.Cancel(handle));
}

TEST(SchedulerTest, PendingCountExcludesTombstones) {
  Scheduler scheduler;
  const EventHandle a = scheduler.ScheduleAfter(SimDuration::Millis(1), [] {});
  scheduler.ScheduleAfter(SimDuration::Millis(2), [] {});
  EXPECT_EQ(scheduler.pending_count(), 2U);
  scheduler.Cancel(a);
  EXPECT_EQ(scheduler.pending_count(), 1U);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.ScheduleAt(SimTime::FromMicros(10), [&] { order.push_back(1); });
  scheduler.ScheduleAt(SimTime::FromMicros(20), [&] { order.push_back(2); });
  scheduler.ScheduleAt(SimTime::FromMicros(30), [&] { order.push_back(3); });
  scheduler.RunUntil(SimTime::FromMicros(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(20));
  EXPECT_EQ(scheduler.pending_count(), 1U);
}

TEST(SchedulerTest, RunUntilAdvancesClockPastLastEvent) {
  Scheduler scheduler;
  scheduler.ScheduleAt(SimTime::FromMicros(5), [] {});
  scheduler.RunUntil(SimTime::FromMicros(1000));
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(1000));
}

TEST(SchedulerTest, RunUntilIncludesDeadlineEvents) {
  Scheduler scheduler;
  bool ran = false;
  scheduler.ScheduleAt(SimTime::FromMicros(100), [&] { ran = true; });
  scheduler.RunUntil(SimTime::FromMicros(100));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CountsExecutedEvents) {
  Scheduler scheduler;
  for (int i = 0; i < 7; ++i) {
    scheduler.ScheduleAfter(SimDuration::Micros(i + 1), [] {});
  }
  EXPECT_EQ(scheduler.Run(), 7U);
  EXPECT_EQ(scheduler.events_executed(), 7U);
}

TEST(SchedulerTest, CancelFromWithinAnEvent) {
  Scheduler scheduler;
  bool second_ran = false;
  EventHandle second;
  scheduler.ScheduleAt(SimTime::FromMicros(1),
                       [&] { scheduler.Cancel(second); });
  second = scheduler.ScheduleAt(SimTime::FromMicros(2),
                                [&] { second_ran = true; });
  scheduler.Run();
  EXPECT_FALSE(second_ran);
}

TEST(SchedulerTest, StaleHandleToReusedSlotFailsCancel) {
  // ABA regression: once a handle's slot is freed and reacquired by a later
  // event, the stale handle's generation no longer matches. Cancelling it
  // must fail — and must not kill the slot's new occupant.
  Scheduler scheduler;
  const EventHandle stale =
      scheduler.ScheduleAfter(SimDuration::Millis(1), [] {});
  ASSERT_TRUE(scheduler.Cancel(stale));  // frees the slot

  // With one slot on the free list, the next schedule reuses it.
  bool reused_ran = false;
  const EventHandle reused =
      scheduler.ScheduleAfter(SimDuration::Millis(1),
                              [&reused_ran] { reused_ran = true; });
  EXPECT_FALSE(scheduler.Cancel(stale));
  scheduler.Run();
  EXPECT_TRUE(reused_ran);
  (void)reused;
}

TEST(SchedulerTest, StaleHandleSurvivesManyReuseGenerations) {
  // Drive one slot through many acquire/release generations; every retired
  // handle must stay dead even as the generation counter climbs.
  Scheduler scheduler;
  std::vector<EventHandle> retired;
  for (int i = 0; i < 64; ++i) {
    const EventHandle handle =
        scheduler.ScheduleAfter(SimDuration::Millis(1), [] {});
    ASSERT_TRUE(scheduler.Cancel(handle));
    retired.push_back(handle);
  }
  int executed = 0;
  scheduler.ScheduleAfter(SimDuration::Millis(1), [&executed] { ++executed; });
  for (const EventHandle handle : retired) {
    EXPECT_FALSE(scheduler.Cancel(handle));
  }
  scheduler.Run();
  EXPECT_EQ(executed, 1);
}

TEST(SchedulerDeathTest, SchedulingInThePastAborts) {
  Scheduler scheduler;
  scheduler.ScheduleAt(SimTime::FromMicros(10), [] {});
  scheduler.Run();
  EXPECT_DEATH(scheduler.ScheduleAt(SimTime::FromMicros(5), [] {}),
               "scheduling into the past");
}

}  // namespace
}  // namespace dcrd
