// Edge cases of the scheduler's two-tier (timer wheel + overflow heap)
// event queue: cancels landing after a cascade, same-tick re-arms,
// far-future entries migrating down from the heap tier, handle ABA across
// wheel slot reuse, and wheel-vs-heap backend parity on a mixed workload.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "event/scheduler.h"

namespace dcrd {
namespace {

// One level-0 rotation of the wheel is 2048 us; delays beyond that insert
// into level >= 1 and cascade down as the clock advances.
constexpr std::int64_t kRotation = 2048;

TEST(SchedulerWheelTest, CancelAfterCascadePreventsExecution) {
  // The target is inserted into wheel level 1 (beyond one rotation). The
  // canceller fires inside the same level-1 block, i.e. *after* the block
  // has cascaded down to level 0 — so the cancel marks an entry that
  // already moved buckets. It must still be honored.
  Scheduler scheduler;
  bool target_ran = false;
  bool sentinel_ran = false;
  const EventHandle target = scheduler.ScheduleAt(
      SimTime::FromMicros(kRotation + 452), [&] { target_ran = true; });
  scheduler.ScheduleAt(SimTime::FromMicros(kRotation + 52),
                       [&] { EXPECT_TRUE(scheduler.Cancel(target)); });
  scheduler.ScheduleAt(SimTime::FromMicros(2 * kRotation + 7),
                       [&] { sentinel_ran = true; });
  scheduler.Run();
  EXPECT_FALSE(target_ran);
  EXPECT_TRUE(sentinel_ran);
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(2 * kRotation + 7));
}

TEST(SchedulerWheelTest, RearmIntoCurrentBucketFiresSameTick) {
  // A zero-delay re-arm lands in the level-0 bucket PopNext is currently
  // draining; it must fire in the same simulated instant, after everything
  // scheduled before it.
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.ScheduleAt(SimTime::FromMicros(10), [&] {
    order.push_back(1);
    if (order.size() == 1) {
      scheduler.RearmCurrentAfter(SimDuration::Micros(0));
    }
  });
  scheduler.ScheduleAt(SimTime::FromMicros(10), [&] { order.push_back(2); });
  scheduler.Run();
  // The re-armed copy takes a fresh seq at re-arm time, so it follows the
  // same-tick event scheduled earlier.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1}));
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(10));
}

TEST(SchedulerWheelTest, RearmAcrossRotationSurvivesCascade) {
  // The RTO-chain shape: each firing re-arms beyond one rotation, so every
  // arming inserts into level 1 and cascades before firing.
  Scheduler scheduler;
  int fired = 0;
  scheduler.ScheduleAfter(SimDuration::Micros(kRotation + 100), [&] {
    if (++fired < 5) {
      scheduler.RearmCurrentAfter(SimDuration::Micros(kRotation + 100));
    }
  });
  scheduler.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(5 * (kRotation + 100)));
}

TEST(SchedulerWheelTest, FarFutureEventsOverflowToHeapAndMigrateBack) {
  // Beyond the wheel's ~2.4 h horizon events sit in the binary-heap tier
  // and migrate into the wheel once the clock's horizon block reaches them.
  Scheduler scheduler;
  constexpr std::int64_t kHorizon = std::int64_t{1} << 33;
  std::vector<int> order;
  scheduler.ScheduleAt(SimTime::FromMicros(3 * kHorizon + 5),
                       [&] { order.push_back(3); });
  scheduler.ScheduleAt(SimTime::FromMicros(kHorizon + 77),
                       [&] { order.push_back(2); });
  scheduler.ScheduleAt(SimTime::FromMicros(12), [&] { order.push_back(1); });
  EXPECT_EQ(scheduler.pending_count(), 3u);
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(3 * kHorizon + 5));
}

TEST(SchedulerWheelTest, CancelledFarFutureEventNeverMigrates) {
  Scheduler scheduler;
  constexpr std::int64_t kHorizon = std::int64_t{1} << 33;
  bool far_ran = false;
  bool near_ran = false;
  const EventHandle far = scheduler.ScheduleAt(
      SimTime::FromMicros(kHorizon + 1), [&] { far_ran = true; });
  scheduler.ScheduleAt(SimTime::FromMicros(kHorizon + 2),
                       [&] { near_ran = true; });
  EXPECT_TRUE(scheduler.Cancel(far));
  scheduler.Run();
  EXPECT_FALSE(far_ran);
  EXPECT_TRUE(near_ran);
}

TEST(SchedulerWheelTest, AbaAcrossWheelSlotReuse) {
  // Cancelling leaves the wheel node stale in place but frees the action
  // slot; the very next schedule reuses that slot with a bumped generation.
  // At dispatch the stale wheel entry is popped first and must be filtered
  // by the generation probe — not fire the slot's new occupant early or
  // twice.
  Scheduler scheduler;
  int fired = 0;
  const EventHandle stale =
      scheduler.ScheduleAt(SimTime::FromMicros(100), [&] { fired += 100; });
  ASSERT_TRUE(scheduler.Cancel(stale));
  // Same tick, reused slot: the stale entry and the live one collide in the
  // same level-0 bucket.
  scheduler.ScheduleAt(SimTime::FromMicros(100), [&] { fired += 1; });
  EXPECT_FALSE(scheduler.Cancel(stale));
  scheduler.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerWheelTest, RunUntilMidRotationThenResume) {
  // RunUntil parks the first over-deadline popped entry; resuming must
  // neither lose nor reorder it.
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.ScheduleAt(SimTime::FromMicros(100), [&] { order.push_back(1); });
  scheduler.ScheduleAt(SimTime::FromMicros(300), [&] { order.push_back(2); });
  scheduler.ScheduleAt(SimTime::FromMicros(kRotation + 9),
                       [&] { order.push_back(3); });
  scheduler.RunUntil(SimTime::FromMicros(200));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(scheduler.now(), SimTime::FromMicros(200));
  // Scheduling behind the parked entry still dispatches in time order.
  scheduler.ScheduleAt(SimTime::FromMicros(250), [&] { order.push_back(4); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
}

TEST(SchedulerWheelTest, ReservePreGrowsWithoutChangingBehavior) {
  Scheduler scheduler;
  scheduler.Reserve(4096);
  std::uint64_t fired = 0;
  for (int i = 0; i < 4096; ++i) {
    scheduler.ScheduleAfter(SimDuration::Micros(1 + i % 977),
                            [&fired] { ++fired; });
  }
  EXPECT_EQ(scheduler.Run(), 4096u);
  EXPECT_EQ(fired, 4096u);
}

TEST(SchedulerWheelTest, BackendsAgreeOnMixedWorkload) {
  // The determinism contract in miniature: an identical schedule/cancel/
  // re-arm workload must produce the identical firing sequence on the wheel
  // and on the legacy heap backend.
  const auto run = [](SchedulerBackend backend) {
    Scheduler scheduler(backend);
    std::vector<std::pair<std::int64_t, int>> fired;
    std::vector<EventHandle> handles;
    std::uint64_t state = 0x2545F4914F6CDD1Dull;
    const auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    for (int i = 0; i < 500; ++i) {
      const auto delay =
          static_cast<std::int64_t>(next() % (std::uint64_t{1} << 34));
      handles.push_back(scheduler.ScheduleAfter(
          SimDuration::Micros(delay), [&fired, &scheduler, i] {
            fired.emplace_back(scheduler.now().micros(), i);
          }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 3) {
      scheduler.Cancel(handles[i]);
    }
    int periodic = 0;
    scheduler.ScheduleAfter(SimDuration::Micros(10), [&] {
      fired.emplace_back(scheduler.now().micros(), -1);
      if (++periodic < 20) {
        scheduler.RearmCurrentAfter(SimDuration::Micros(5000));
      }
    });
    scheduler.Run();
    return fired;
  };
  EXPECT_EQ(run(SchedulerBackend::kTimerWheel),
            run(SchedulerBackend::kBinaryHeap));
}

}  // namespace
}  // namespace dcrd
