#include "routing/tree_router.h"

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "test_harness.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

// Diamond with a slow direct edge: hop-optimal and delay-optimal routes to
// node 1 differ.
Graph Diamond() {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(10));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(2), NodeId(1), SimDuration::Millis(2));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(1));
  return graph;
}

TEST(TreeRouterTest, DTreeDeliversAlongShortestDelayPath) {
  RouterHarness h(Diamond(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(1)));
  // Via node 2: 1 ms + 2 ms.
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(1)),
            SimTime::Zero() + SimDuration::Millis(3));
}

TEST(TreeRouterTest, RTreeDeliversAlongFewestHops) {
  RouterHarness h(Diamond(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  TreeRouter router(h.Context(), TreeKind::kShortestHop);
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  // Direct link: 10 ms.
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(1)),
            SimTime::Zero() + SimDuration::Millis(10));
}

TEST(TreeRouterTest, SharesCopiesOnCommonPrefix) {
  // Line 0-1-2-3 with subscribers at 2 and 3: one copy leaves node 0.
  RouterHarness h(Line(4, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  // 0->1, 1->2 shared; 2->3 single: 3 data transmissions total.
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 3U);
}

TEST(TreeRouterTest, NoRerouteOnFailure) {
  // All links permanently failed: the tree gives up after m transmissions.
  RouterHarness h(Line(3, SimDuration::Millis(10)), 1.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  TreeRouter router(h.Context(/*m=*/2), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(2)));
  // Exactly m transmissions on the first hop, then silence.
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 2U);
}

TEST(TreeRouterTest, PublisherColocatedSubscriberDeliversImmediately) {
  RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(0), SimDuration::Millis(10));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(0)));
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(0)), SimTime::Zero());
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 0U);
}

TEST(TreeRouterTest, TreeForExposesSpanningTree) {
  Rng rng(6);
  RouterHarness h(RandomConnected(12, 4, rng), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(5));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(500));
  TreeRouter router(h.Context(), TreeKind::kShortestHop);
  router.Rebuild(h.monitor.view());
  const PathTree& tree = router.TreeFor(topic);
  EXPECT_EQ(tree.source, NodeId(5));
  for (std::size_t v = 0; v < 12; ++v) {
    EXPECT_TRUE(tree.Reachable(NodeId(static_cast<NodeId::underlying_type>(v))));
  }
}

TEST(TreeRouterTest, RebuildTracksMonitoredDelays) {
  // With a monitored view that inflates the 0-2 edge, the D-Tree must
  // switch to the direct edge even though ground truth still favours 0-2.
  const Graph diamond = Diamond();
  RouterHarness h(Diamond(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);

  std::vector<SimDuration> alphas;
  std::vector<double> gammas;
  for (std::size_t e = 0; e < h.graph.edge_count(); ++e) {
    alphas.push_back(h.graph.edge(LinkId(static_cast<LinkId::underlying_type>(e))).delay);
    gammas.push_back(1.0);
  }
  alphas[h.graph.FindEdge(NodeId(0), NodeId(2))->underlying()] =
      SimDuration::Millis(100);
  const MonitoredView skewed(alphas, gammas);
  router.Rebuild(skewed);

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  // Direct path taken: ground-truth delay 10 ms.
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(1)),
            SimTime::Zero() + SimDuration::Millis(10));
}

}  // namespace
}  // namespace dcrd
