// SourceRoutedRouter internals reachable only through contrived timing:
// the per-message route cache and its TTL purge.
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "routing/tree_router.h"
#include "test_harness.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

TEST(SourceRoutedTest, PurgedRouteAbandonsInFlightPacket) {
  // Links slower than the 120 s route-cache TTL: publishing a second
  // message after the TTL purges the first message's routes, so the first
  // packet is abandoned at the intermediate broker mid-journey.
  Graph graph(3);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Seconds(130));
  graph.AddEdge(NodeId(1), NodeId(2), SimDuration::Seconds(130));
  RouterHarness h(std::move(graph), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Seconds(600));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());

  const Message first = h.PublishVia(router, topic);
  // Past the TTL but before the first packet reaches broker 1.
  h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Seconds(125));
  const Message second = h.PublishVia(router, topic);
  h.scheduler.Run();

  EXPECT_FALSE(h.sink.Delivered(first.id, NodeId(2)));
  EXPECT_TRUE(h.sink.Delivered(second.id, NodeId(2)));
}

TEST(SourceRoutedTest, CacheSurvivesWithinTtl) {
  // Same shape but fast links: everything within TTL, both delivered.
  RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());
  const Message first = h.PublishVia(router, topic);
  h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Seconds(60));
  const Message second = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(first.id, NodeId(2)));
  EXPECT_TRUE(h.sink.Delivered(second.id, NodeId(2)));
}

TEST(SourceRoutedDeathTest, DuplicateMessageIdRejected) {
  RouterHarness h(Line(2, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(100));
  TreeRouter router(h.Context(), TreeKind::kShortestDelay);
  router.Rebuild(h.monitor.view());
  Message message;
  message.id = MessageId(42);
  message.topic = topic;
  message.publisher = NodeId(0);
  message.publish_time = h.scheduler.now();
  router.Publish(message);
  EXPECT_DEATH(router.Publish(message), "duplicate message id");
}

}  // namespace
}  // namespace dcrd
