#include "routing/multipath_router.h"

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "test_harness.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

// Two fully disjoint routes 0->3 plus a slow direct edge.
Graph TwoRoutes() {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(2));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(2));
  graph.AddEdge(NodeId(2), NodeId(3), SimDuration::Millis(3));
  graph.AddEdge(NodeId(0), NodeId(3), SimDuration::Millis(30));
  return graph;
}

TEST(MultipathRouterTest, PicksDisjointSecondary) {
  RouterHarness h(TwoRoutes(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  MultipathRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const auto& paths = router.PathsFor(topic, NodeId(3));
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_EQ(paths[0],
            (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(3)}));
  // Both the 0-2-3 route and the direct edge are link-disjoint from the
  // primary; Yen order prefers the faster 0-2-3.
  EXPECT_EQ(paths[1],
            (std::vector<NodeId>{NodeId(0), NodeId(2), NodeId(3)}));
}

TEST(MultipathRouterTest, SendsDuplicateCopies) {
  RouterHarness h(TwoRoutes(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  MultipathRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  // Primary 2 hops + secondary 2 hops.
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 4U);
  // First arrival wins: via the primary at 3 ms.
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(3)),
            SimTime::Zero() + SimDuration::Millis(3));
  // The duplicate is reported too (metrics dedupe, the sink records both).
  EXPECT_EQ(h.sink.CountFor(message.id), 2U);
}

TEST(MultipathRouterTest, NoReroutingUnderTotalFailure) {
  RouterHarness h(TwoRoutes(), 1.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  MultipathRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(3)));
  // Both first hops tried once (m=1), then given up — no exploration.
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 2U);
}

TEST(MultipathRouterTest, SingleRouteWhenGraphHasOnePath) {
  RouterHarness h(Line(3, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  MultipathRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const auto& paths = router.PathsFor(topic, NodeId(2));
  ASSERT_EQ(paths.size(), 1U);
  EXPECT_EQ(paths[0].size(), 3U);

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 2U);
}

TEST(MultipathRouterTest, PathsComeFromYenTopFiveByDelay) {
  Rng rng(12);
  RouterHarness h(RandomConnected(10, 4, rng), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(9), SimDuration::Millis(500));
  MultipathRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const auto& paths = router.PathsFor(topic, NodeId(9));
  const auto top5 = YenKShortestPaths(h.graph, NodeId(0), NodeId(9), 5);
  ASSERT_GE(top5.size(), 2U);
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_EQ(paths[0], top5[0].nodes);
  bool secondary_in_top5 = false;
  for (std::size_t i = 1; i < top5.size(); ++i) {
    secondary_in_top5 |= top5[i].nodes == paths[1];
  }
  EXPECT_TRUE(secondary_in_top5);
}

TEST(MultipathRouterTest, ThreePathSelectionStaysDistinct) {
  Rng rng(21);
  RouterHarness h(RandomConnected(12, 5, rng), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(11),
                                  SimDuration::Millis(500));
  MultipathRouter router(h.Context(), /*path_count=*/3);
  router.Rebuild(h.monitor.view());

  const auto& paths = router.PathsFor(topic, NodeId(11));
  ASSERT_EQ(paths.size(), 3U);
  EXPECT_NE(paths[0], paths[1]);
  EXPECT_NE(paths[0], paths[2]);
  EXPECT_NE(paths[1], paths[2]);
}

TEST(MultipathRouterTest, MorePathsMoreTrafficMoreResilience) {
  // Same overlay and failure schedule; path_count 1 vs 3. Traffic rises
  // with the count and delivery never falls.
  Rng rng(33);
  const Graph base_graph = RandomConnected(12, 5, rng);
  std::uint64_t k1_data = 0, k3_data = 0;
  std::size_t k1_delivered = 0, k3_delivered = 0;
  for (const std::size_t k : {1U, 3U}) {
    Graph copy = base_graph;
    RouterHarness h(std::move(copy), 0.10, 0.0, /*seed=*/7);
    const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
    for (std::uint32_t v = 2; v < 12; v += 3) {
      h.subscriptions.AddSubscription(topic, NodeId(v),
                                      SimDuration::Millis(400));
    }
    MultipathRouter router(h.Context(), k);
    router.Rebuild(h.monitor.view());
    for (int i = 0; i < 40; ++i) {
      h.PublishVia(router, topic);
      h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Seconds(1));
    }
    h.scheduler.Run();
    (k == 1 ? k1_data : k3_data) =
        h.network.counters(TrafficClass::kData).attempted;
    std::size_t delivered = 0;
    for (std::uint64_t id = 0; id < 40; ++id) {
      for (std::uint32_t v = 2; v < 12; v += 3) {
        delivered += h.sink.Delivered(MessageId(id), NodeId(v)) ? 1 : 0;
      }
    }
    (k == 1 ? k1_delivered : k3_delivered) = delivered;
  }
  EXPECT_GT(k3_data, 2 * k1_data);
  EXPECT_GE(k3_delivered, k1_delivered);
}

TEST(MultipathRouterTest, MidEpochJoinerSkippedUntilRebuild) {
  // A subscriber added after the last rebuild has no path set yet: the
  // router must skip it gracefully (no crash, no delivery) and pick it up
  // at the next rebuild.
  RouterHarness h(TwoRoutes(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  MultipathRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  h.subscriptions.AddSubscription(topic, NodeId(1), SimDuration::Millis(500));
  const Message before = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(before.id, NodeId(3)));
  EXPECT_FALSE(h.sink.Delivered(before.id, NodeId(1)));

  router.Rebuild(h.monitor.view());
  const Message after = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(after.id, NodeId(1)));
}

}  // namespace
}  // namespace dcrd
