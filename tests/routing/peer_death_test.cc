// Peer-death detection, probing, and the ABA round guard (see PeerState in
// hop_transport.h). The probe timers ride the same slot-map scheduler as
// retransmission timers, so these tests also exercise stale-handle firing:
// a timer armed for one death round must be inert after a revive or a
// crash reset recycled the state.
#include <gtest/gtest.h>

#include <cstdint>

#include "graph/topology.h"
#include "routing/hop_transport.h"

namespace dcrd {
namespace {

Message TestMessage(std::uint64_t id = 1) {
  Message message;
  message.id = MessageId(id);
  message.topic = TopicId(0);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::Zero();
  return message;
}

HopTransportConfig PeerDeathConfig() {
  HopTransportConfig config;
  config.peer_death = true;
  config.peer_death_threshold = 2;
  config.probe_max_interval = SimDuration::Seconds(1);
  return config;
}

struct Fixture {
  Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
};

TEST(PeerDeathTest, ThresholdGiveUpsDeclareDeathAndNewSendsFailFast) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 1.0), 0.0,
                         Rng(1));  // link permanently down
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {},
                         PeerDeathConfig());
  int failures = 0;
  for (std::uint64_t id = 1; id <= 2; ++id) {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(id), {NodeId(1)}), 1,
                           SimDuration::Millis(21),
                           [&](bool ok) { failures += ok ? 0 : 1; });
  }
  f.scheduler.RunUntil(SimTime::FromMicros(500'000));
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(transport.stats().peer_deaths, 1U);
  EXPECT_FALSE(transport.PeerAlive(NodeId(0), f.link));
  // The probe loop is running (and going unanswered).
  EXPECT_GE(transport.stats().peer_probes, 2U);
  EXPECT_EQ(transport.stats().peer_revivals, 0U);

  // A send on the known-dead link fails without burning a transmission.
  const std::uint64_t tx_before = transport.stats().transmissions;
  bool done3 = true;
  transport.SendReliable(NodeId(0), f.link,
                         Packet(TestMessage(3), {NodeId(1)}), 3,
                         SimDuration::Millis(21),
                         [&](bool ok) { done3 = ok; });
  f.scheduler.RunUntil(SimTime::FromMicros(600'000));
  EXPECT_FALSE(done3);
  EXPECT_EQ(transport.stats().transmissions, tx_before);
  EXPECT_EQ(transport.pending_count(), 0U);
}

// Finds a seed whose schedule keeps `link` down for epochs [0, 3) and up
// for epochs [3, 10) — a controllable outage for the revival test.
std::uint64_t FindOutageSeed(LinkId link) {
  for (std::uint64_t seed = 1; seed < 50'000; ++seed) {
    const FailureSchedule schedule(seed, 0.4);
    bool ok = true;
    for (std::int64_t e = 0; e < 10 && ok; ++e) {
      const bool up =
          schedule.IsUp(link, SimTime::FromMicros(e * 1'000'000 + 500'000));
      ok = (e < 3) ? !up : up;
    }
    if (ok) return seed;
  }
  return 0;
}

TEST(PeerDeathTest, ProbeRevivesPeerWhenLinkReturns) {
  Fixture f;
  const std::uint64_t seed = FindOutageSeed(f.link);
  ASSERT_NE(seed, 0U);
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(seed, 0.4),
                         0.0, Rng(1));
  int arrivals = 0;
  HopTransport transport(network,
                         [&](NodeId, const Packet&, NodeId) { ++arrivals; },
                         PeerDeathConfig());
  for (std::uint64_t id = 1; id <= 2; ++id) {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(id), {NodeId(1)}), 1,
                           SimDuration::Millis(21), [](bool) {});
  }
  // Death by ~42ms; probes back off (21ms base, 1s cap) and keep firing
  // into the up window that opens at t=3s, so the revival is certain well
  // before t=9s.
  f.scheduler.RunUntil(SimTime::FromMicros(9'000'000));
  EXPECT_EQ(transport.stats().peer_deaths, 1U);
  EXPECT_EQ(transport.stats().peer_revivals, 1U);
  EXPECT_TRUE(transport.PeerAlive(NodeId(0), f.link));

  // The revived link carries traffic again (epoch 9 is up).
  bool delivered = false;
  transport.SendReliable(NodeId(0), f.link,
                         Packet(TestMessage(3), {NodeId(1)}), 1,
                         SimDuration::Millis(21),
                         [&](bool ok) { delivered = ok; });
  f.scheduler.RunUntil(SimTime::FromMicros(9'500'000));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(arrivals, 1);
}

TEST(PeerDeathTest, CrashResetsLivenessAndStaleProbeTimersGoInert) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 1.0), 0.0,
                         Rng(1));
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {},
                         PeerDeathConfig());
  for (std::uint64_t id = 1; id <= 2; ++id) {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(id), {NodeId(1)}), 1,
                           SimDuration::Millis(21), [](bool) {});
  }
  f.scheduler.RunUntil(SimTime::FromMicros(100'000));
  ASSERT_FALSE(transport.PeerAlive(NodeId(0), f.link));

  // The crash voids the liveness belief and bumps the ABA round; the probe
  // timer armed for the old round must do nothing when (if) it fires.
  transport.OnBrokerCrash(NodeId(0));
  EXPECT_TRUE(transport.PeerAlive(NodeId(0), f.link));
  const std::uint64_t probes_at_reset = transport.stats().peer_probes;
  f.scheduler.RunUntil(SimTime::FromMicros(3'000'000));
  EXPECT_EQ(transport.stats().peer_probes, probes_at_reset);
  EXPECT_EQ(transport.stats().peer_revivals, 0U);

  // A fresh post-restart death round starts from scratch: two new give-ups
  // are needed, and probing resumes under the new round.
  for (std::uint64_t id = 3; id <= 4; ++id) {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(id), {NodeId(1)}), 1,
                           SimDuration::Millis(21), [](bool) {});
  }
  f.scheduler.RunUntil(SimTime::FromMicros(4'000'000));
  EXPECT_EQ(transport.stats().peer_deaths, 2U);
  EXPECT_GT(transport.stats().peer_probes, probes_at_reset);
}

TEST(PeerDeathTest, CrashKillsPendingCopiesWithoutInvokingDone) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1));
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {},
                         PeerDeathConfig());
  bool done_invoked = false;
  transport.SendReliable(NodeId(0), f.link,
                         Packet(TestMessage(), {NodeId(1)}), 3,
                         SimDuration::Millis(21),
                         [&](bool) { done_invoked = true; });
  ASSERT_EQ(transport.pending_count(), 1U);
  EXPECT_EQ(transport.OnBrokerCrash(NodeId(0)), 1U);
  EXPECT_EQ(transport.pending_count(), 0U);
  EXPECT_EQ(transport.stats().crash_copies_killed, 1U);
  f.scheduler.Run();
  EXPECT_FALSE(done_invoked);
}

}  // namespace
}  // namespace dcrd
