#include "routing/rto_estimator.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

// Estimator state is keyed per directed link index (2*link + direction).
constexpr std::size_t kLink = 7;
const SimDuration kSeed = SimDuration::Millis(40);

TEST(RtoEstimatorTest, SeedUsedBeforeFirstSample) {
  const RtoEstimator estimator;
  EXPECT_FALSE(estimator.HasSample(kLink));
  EXPECT_EQ(estimator.Rto(kLink, kSeed), kSeed);
}

TEST(RtoEstimatorTest, FirstSampleInitialisesRfc6298) {
  RtoEstimator estimator;
  estimator.OnSample(kLink, SimDuration::Millis(20));
  EXPECT_TRUE(estimator.HasSample(kLink));
  EXPECT_EQ(estimator.sample_count(), 1U);
  // SRTT = 20ms, RTTVAR = 10ms -> RTO = 20 + 4*10 = 60ms.
  EXPECT_EQ(estimator.Rto(kLink, kSeed), SimDuration::Millis(60));
}

TEST(RtoEstimatorTest, SteadySamplesConvergeTowardRtt) {
  RtoEstimator estimator;
  for (int i = 0; i < 200; ++i) {
    estimator.OnSample(kLink, SimDuration::Millis(20));
  }
  // Constant samples: RTTVAR decays toward 0, so RTO approaches
  // SRTT + granularity-floor. Well below the first-sample 60ms and far
  // below a 2*alpha fixed timer of 40ms... the estimator tracks reality.
  const SimDuration rto = estimator.Rto(kLink, kSeed);
  EXPECT_LT(rto, SimDuration::Millis(22));
  EXPECT_GE(rto, SimDuration::Millis(20));
}

TEST(RtoEstimatorTest, InflatedRttRaisesRto) {
  RtoEstimator estimator;
  for (int i = 0; i < 50; ++i) {
    estimator.OnSample(kLink, SimDuration::Millis(20));
  }
  const SimDuration before = estimator.Rto(kLink, kSeed);
  // Delay inflation (a gray episode tripling the propagation).
  for (int i = 0; i < 50; ++i) {
    estimator.OnSample(kLink, SimDuration::Millis(60));
  }
  const SimDuration after = estimator.Rto(kLink, kSeed);
  EXPECT_GT(after, before);
  EXPECT_GE(after, SimDuration::Millis(60));
}

TEST(RtoEstimatorTest, PerDirectionStateIsIndependent) {
  RtoEstimator estimator;
  // Indices 2 and 3 are the two directions of one physical link: a sample
  // on one direction must not leak into the other's estimate.
  estimator.OnSample(2, SimDuration::Millis(10));
  EXPECT_FALSE(estimator.HasSample(3));
  EXPECT_EQ(estimator.Rto(3, kSeed), kSeed);
}

TEST(RtoEstimatorTest, ClampToMinAndMax) {
  RtoConfig config;
  config.min_rto = SimDuration::Millis(5);
  config.max_rto = SimDuration::Millis(100);
  RtoEstimator estimator(config);
  estimator.OnSample(kLink, SimDuration::Micros(100));
  EXPECT_EQ(estimator.Rto(kLink, kSeed), SimDuration::Millis(5));
  for (int i = 0; i < 100; ++i) {
    estimator.OnSample(kLink, SimDuration::Millis(500));
  }
  EXPECT_EQ(estimator.Rto(kLink, kSeed), SimDuration::Millis(100));
}

TEST(RtoEstimatorTest, BackoffGrowsExponentiallyUntilCap) {
  RtoConfig config;
  config.jitter = 0.0;  // isolate the backoff
  RtoEstimator estimator(config);
  estimator.OnSample(kLink, SimDuration::Millis(10));
  const SimDuration t0 = estimator.TimeoutFor(kLink, kSeed, 0, 1);
  const SimDuration t1 = estimator.TimeoutFor(kLink, kSeed, 1, 1);
  const SimDuration t2 = estimator.TimeoutFor(kLink, kSeed, 2, 1);
  EXPECT_EQ(t1.micros(), 2 * t0.micros());
  EXPECT_EQ(t2.micros(), 4 * t0.micros());
  // Deep attempts saturate at max_rto instead of overflowing.
  EXPECT_EQ(estimator.TimeoutFor(kLink, kSeed, 40, 1), config.max_rto);
}

TEST(RtoEstimatorTest, JitterIsDeterministicAndBounded) {
  RtoConfig config;
  config.jitter = 0.1;
  const RtoEstimator a(config);
  const RtoEstimator b(config);
  for (std::uint64_t copy = 1; copy < 50; ++copy) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const SimDuration ta = a.TimeoutFor(kLink, kSeed, attempt, copy);
      EXPECT_EQ(ta, b.TimeoutFor(kLink, kSeed, attempt, copy));
      // One-sided: jitter may stretch a timeout but never cuts it below
      // the RTO — a shortened timer would fire ahead of the ACK.
      const double base_us =
          static_cast<double>(kSeed.micros()) * (1 << attempt);
      EXPECT_GE(static_cast<double>(ta.micros()), base_us - 1.0);
      EXPECT_LE(static_cast<double>(ta.micros()), 1.1 * base_us + 1.0);
    }
  }
}

TEST(RtoEstimatorTest, JitterVariesAcrossCopies) {
  RtoConfig config;
  config.jitter = 0.1;
  const RtoEstimator estimator(config);
  // Concurrent copies on one link must not retransmit in lock-step.
  const SimDuration t1 = estimator.TimeoutFor(kLink, kSeed, 1, 101);
  const SimDuration t2 = estimator.TimeoutFor(kLink, kSeed, 1, 202);
  EXPECT_NE(t1, t2);
}

}  // namespace
}  // namespace dcrd
