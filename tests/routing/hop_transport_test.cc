#include "routing/hop_transport.h"

#include <gtest/gtest.h>

#include "graph/topology.h"

namespace dcrd {
namespace {

Message TestMessage() {
  Message message;
  message.id = MessageId(1);
  message.topic = TopicId(0);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::Zero();
  return message;
}

struct Fixture {
  Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));

  OverlayNetwork MakeNetwork(double pf, double pl, std::uint64_t seed = 1) {
    return OverlayNetwork(graph, scheduler, FailureSchedule(seed, pf), pl,
                          Rng(seed));
  }
  static SimDuration Timeout() { return SimDuration::Millis(21); }
};

TEST(HopTransportTest, DeliversAndAcks) {
  Fixture f;
  OverlayNetwork network = f.MakeNetwork(0.0, 0.0);
  std::vector<NodeId> arrivals;
  HopTransport transport(network,
                         [&](NodeId at, const Packet&, NodeId from) {
                           arrivals.push_back(at);
                           EXPECT_EQ(from, NodeId(0));
                         });
  bool acked = false;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         1, Fixture::Timeout(),
                         [&](bool ok) { acked = ok; });
  f.scheduler.Run();
  EXPECT_EQ(arrivals, (std::vector<NodeId>{NodeId(1)}));
  EXPECT_TRUE(acked);
  EXPECT_EQ(network.counters(TrafficClass::kData).attempted, 1U);
  EXPECT_EQ(network.counters(TrafficClass::kAck).attempted, 1U);
  EXPECT_EQ(transport.pending_count(), 0U);
}

TEST(HopTransportTest, AckTimingFollowsAckDelayFactor) {
  // Factor 0 (paper model): the ACK returns the instant the data lands.
  {
    Fixture f;
    OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                           Rng(1), /*ack_delay_factor=*/0.0);
    HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
    SimTime ack_time;
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(), {NodeId(1)}), 1,
                           Fixture::Timeout(),
                           [&](bool) { ack_time = f.scheduler.now(); });
    f.scheduler.Run();
    EXPECT_EQ(ack_time, SimTime::Zero() + SimDuration::Millis(10));
  }
  // Factor 1 (physical): a full round trip.
  {
    Fixture f;
    OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                           Rng(1), /*ack_delay_factor=*/1.0);
    HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
    SimTime ack_time;
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(), {NodeId(1)}), 1,
                           Fixture::Timeout(),
                           [&](bool) { ack_time = f.scheduler.now(); });
    f.scheduler.Run();
    EXPECT_EQ(ack_time, SimTime::Zero() + SimDuration::Millis(20));
  }
}

TEST(HopTransportTest, ReportsFailureAfterTimeout) {
  Fixture f;
  OverlayNetwork network = f.MakeNetwork(1.0, 0.0);  // link always down
  int arrivals = 0;
  HopTransport transport(network,
                         [&](NodeId, const Packet&, NodeId) { ++arrivals; });
  bool done_value = true;
  SimTime done_time;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         1, Fixture::Timeout(), [&](bool ok) {
                           done_value = ok;
                           done_time = f.scheduler.now();
                         });
  f.scheduler.Run();
  EXPECT_FALSE(done_value);
  EXPECT_EQ(arrivals, 0);
  EXPECT_EQ(done_time, SimTime::Zero() + Fixture::Timeout());
}

TEST(HopTransportTest, RetransmitsUpToM) {
  Fixture f;
  OverlayNetwork network = f.MakeNetwork(1.0, 0.0);
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
  bool done_value = true;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         3, Fixture::Timeout(),
                         [&](bool ok) { done_value = ok; });
  f.scheduler.Run();
  EXPECT_FALSE(done_value);
  EXPECT_EQ(network.counters(TrafficClass::kData).attempted, 3U);
}

TEST(HopTransportTest, RetransmissionRecoversLoss) {
  // Drop only the first transmission: loss rng with rate such that first
  // draw losses. Use rate 1.0 for the first send then 0: emulate via a
  // failed first second. Simpler: link down during second 0, up in second 1,
  // timeout pushes the retry into second 1.
  Fixture f;
  std::uint64_t seed = 0;
  for (; seed < 20'000; ++seed) {
    const FailureSchedule schedule(seed, 0.5);
    if (!schedule.IsUp(f.link, SimTime::Zero()) &&
        schedule.IsUp(f.link, SimTime::FromMicros(1'050'000))) {
      break;
    }
  }
  ASSERT_LT(seed, 20'000U);
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(seed, 0.5),
                         0.0, Rng(1));
  int arrivals = 0;
  HopTransport transport(network,
                         [&](NodeId, const Packet&, NodeId) { ++arrivals; });
  bool acked = false;
  // Timeout of 1.05 s puts transmission #2 into the next failure epoch.
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         2, SimDuration::Millis(1050),
                         [&](bool ok) { acked = ok; });
  f.scheduler.Run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(arrivals, 1);
  EXPECT_EQ(network.counters(TrafficClass::kData).attempted, 2U);
}

TEST(HopTransportTest, DuplicateDataSuppressedButReAcked) {
  // ACK is lost (but data passes): sender retransmits, receiver must not
  // hand the duplicate to the protocol yet must re-ACK.
  Fixture f;
  Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler& scheduler = f.scheduler;
  // Loss draws are keyed (pure hashes of draw address, not a sequential
  // stream): search a seed where data tx#0 passes, its ACK drops, data tx#1
  // passes and its ACK passes. The addresses below mirror OverlayNetwork:
  // data from node 0 travels direction 0 of link 0 (draw_a = (0<<2)|kData),
  // the ACK comes back on direction 1 ((1<<2)|kAck) keyed by
  // (copy_id<<4)|tx_index, with copy_id = ((sender+1)<<40)|0.
  const std::uint64_t copy = std::uint64_t{1} << 40;
  std::uint64_t seed = 0;
  for (; seed < 100'000; ++seed) {
    const std::uint64_t keyed = Rng(seed).Fork("keyed")();
    if (!KeyedBernoulli(0.5, keyed, 0, 0, 0) &&
        KeyedBernoulli(0.5, keyed, 5, (copy << 4) | 0, 0) &&
        !KeyedBernoulli(0.5, keyed, 0, 1, 0) &&
        !KeyedBernoulli(0.5, keyed, 5, (copy << 4) | 1, 0)) {
      break;
    }
  }
  ASSERT_LT(seed, 100'000U);
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0), 0.5,
                         Rng(seed));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  int deliveries = 0;
  HopTransport transport(network,
                         [&](NodeId, const Packet&, NodeId) { ++deliveries; });
  bool acked = false;
  transport.SendReliable(NodeId(0), link, Packet(TestMessage(), {NodeId(1)}),
                         2, SimDuration::Millis(21),
                         [&](bool ok) { acked = ok; });
  scheduler.Run();
  EXPECT_EQ(deliveries, 1);  // duplicate suppressed
  EXPECT_TRUE(acked);        // second ACK got through
  EXPECT_EQ(network.counters(TrafficClass::kAck).attempted, 2U);
}

TEST(HopTransportTest, DoneRunsExactlyOnce) {
  Fixture f;
  OverlayNetwork network = f.MakeNetwork(0.0, 0.0);
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
  int done_calls = 0;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         3, Fixture::Timeout(), [&](bool) { ++done_calls; });
  f.scheduler.Run();
  EXPECT_EQ(done_calls, 1);
}

TEST(HopTransportTest, ConcurrentSendsIndependent) {
  Fixture f;
  OverlayNetwork network = f.MakeNetwork(0.0, 0.0);
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
  int acks = 0;
  for (int i = 0; i < 10; ++i) {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(), {NodeId(1)}), 1,
                           Fixture::Timeout(), [&](bool ok) { acks += ok; });
  }
  f.scheduler.Run();
  EXPECT_EQ(acks, 10);
}

TEST(HopTransportTest, AckLostOnLastTransmissionDeliversButReportsFailure) {
  // Regression: the ACK for the final (m-th) transmission is lost. The
  // sender must report done(false) after the timeout — and the packet must
  // nevertheless have been handed up exactly once downstream. Protocols
  // treating done(false) as "not delivered" would re-inject a duplicate;
  // the header documents this exact hazard.
  Fixture f;
  // Keyed loss draws: data tx#0 passes, its ACK drops (addresses as in
  // DuplicateDataSuppressedButReAcked above).
  const std::uint64_t copy = std::uint64_t{1} << 40;
  std::uint64_t seed = 0;
  for (; seed < 100'000; ++seed) {
    const std::uint64_t keyed = Rng(seed).Fork("keyed")();
    if (!KeyedBernoulli(0.5, keyed, 0, 0, 0) &&
        KeyedBernoulli(0.5, keyed, 5, (copy << 4) | 0, 0)) {
      break;
    }
  }
  ASSERT_LT(seed, 100'000U);
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.5,
                         Rng(seed));
  int deliveries = 0;
  HopTransport transport(network,
                         [&](NodeId, const Packet&, NodeId) { ++deliveries; });
  bool done_called = false;
  bool done_value = true;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         /*max_tx=*/1, Fixture::Timeout(), [&](bool ok) {
                           done_called = true;
                           done_value = ok;
                         });
  f.scheduler.Run();
  EXPECT_TRUE(done_called);
  EXPECT_FALSE(done_value);  // sender never saw the ACK
  EXPECT_EQ(deliveries, 1);  // ...but the copy was delivered, exactly once
  EXPECT_EQ(network.counters(TrafficClass::kData).attempted, 1U);
  EXPECT_EQ(network.counters(TrafficClass::kAck).attempted, 1U);
  EXPECT_EQ(transport.pending_count(), 0U);
}

TEST(HopTransportTest, LateAckCountsSpuriousRetransmission) {
  // RTT is 20 ms (ack_delay_factor 1) but the timer fires at 15 ms: the
  // retransmission is already pointless when the first ACK lands.
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1), /*ack_delay_factor=*/1.0);
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
  bool acked = false;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         /*max_tx=*/2, SimDuration::Millis(15),
                         [&](bool ok) { acked = ok; });
  f.scheduler.Run();
  EXPECT_TRUE(acked);
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.transmissions, 2U);
  EXPECT_EQ(stats.retransmissions, 1U);
  EXPECT_EQ(stats.spurious_retransmissions, 1U);
  EXPECT_GE(stats.rtt_samples, 1U);
  EXPECT_EQ(stats.pending_copies, 0U);
}

TEST(HopTransportTest, AdaptiveRtoStopsSpuriousRetransmissionsAfterLearning) {
  // Same late-timer situation, adaptive mode: the first copy pays one
  // spurious retransmission, but the RTT sample raises the link's RTO so
  // later copies wait out the 20 ms round trip.
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1), /*ack_delay_factor=*/1.0);
  HopTransportConfig config;
  config.adaptive_rto = true;
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {},
                         config);
  int acks = 0;
  const auto send_one = [&] {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(), {NodeId(1)}),
                           /*max_tx=*/2, SimDuration::Millis(15),
                           [&](bool ok) { acks += ok; });
  };
  send_one();
  f.scheduler.Run();
  const std::uint64_t spurious_after_first =
      transport.stats().spurious_retransmissions;
  for (int i = 0; i < 5; ++i) {
    send_one();
    f.scheduler.Run();
  }
  EXPECT_EQ(acks, 6);
  // No further spurious retransmissions once the estimator has a sample.
  EXPECT_EQ(transport.stats().spurious_retransmissions, spurious_after_first);
  EXPECT_EQ(transport.stats().transmissions,
            6U + spurious_after_first);
}

TEST(HopTransportTest, FixedTimerKeepsFiringSpuriouslyWithoutAdaptation) {
  // Control for the test above: fixed mode never learns, so every copy
  // retransmits spuriously under the same late-timer conditions.
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1), /*ack_delay_factor=*/1.0);
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
  int acks = 0;
  for (int i = 0; i < 6; ++i) {
    transport.SendReliable(NodeId(0), f.link,
                           Packet(TestMessage(), {NodeId(1)}),
                           /*max_tx=*/2, SimDuration::Millis(15),
                           [&](bool ok) { acks += ok; });
    f.scheduler.Run();
  }
  EXPECT_EQ(acks, 6);
  EXPECT_EQ(transport.stats().spurious_retransmissions, 6U);
}

TEST(HopTransportTest, ClearDedupStateKeepsPendingSendsAlive) {
  Fixture f;
  OverlayNetwork network = f.MakeNetwork(0.0, 0.0);
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {});
  bool acked = false;
  transport.SendReliable(NodeId(0), f.link, Packet(TestMessage(), {NodeId(1)}),
                         1, Fixture::Timeout(), [&](bool ok) { acked = ok; });
  transport.ClearDedupState();
  f.scheduler.Run();
  EXPECT_TRUE(acked);
}

}  // namespace
}  // namespace dcrd
