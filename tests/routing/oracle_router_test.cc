#include "routing/oracle_router.h"

#include <gtest/gtest.h>

#include "graph/topology.h"
#include "test_harness.h"

namespace dcrd {
namespace {

using testing::RouterHarness;

Graph Diamond() {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(10));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(2), NodeId(1), SimDuration::Millis(2));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(1));
  return graph;
}

TEST(OracleRouterTest, FollowsShortestDelayWhenHealthy) {
  RouterHarness h(Diamond(), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(100));
  OracleRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(3)),
            SimTime::Zero() + SimDuration::Millis(4));  // 0-2-1-3
}

TEST(OracleRouterTest, RoutesAroundCurrentFailure) {
  // Find a seed where, at t=0, the cheap 0-2 link is down but 0-1 and 1-3
  // are up: the oracle must pay for the direct edge and still deliver.
  const Graph graph = Diamond();
  const LinkId link02 = *graph.FindEdge(NodeId(0), NodeId(2));
  const LinkId link01 = *graph.FindEdge(NodeId(0), NodeId(1));
  const LinkId link13 = *graph.FindEdge(NodeId(1), NodeId(3));
  std::uint64_t seed = 0;
  for (; seed < 50'000; ++seed) {
    const FailureSchedule schedule(seed, 0.4);
    if (!schedule.IsUp(link02, SimTime::Zero()) &&
        schedule.IsUp(link01, SimTime::Zero()) &&
        schedule.IsUp(link13, SimTime::FromMicros(10'000))) {
      break;
    }
  }
  ASSERT_LT(seed, 50'000U);
  RouterHarness h(Diamond(), 0.4, 0.0, seed);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(100));
  OracleRouter router(h.Context());
  router.Rebuild(h.monitor.view());

  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  EXPECT_EQ(h.sink.ArrivalOf(message.id, NodeId(3)),
            SimTime::Zero() + SimDuration::Millis(11));  // 0-1-3 direct
}

TEST(OracleRouterTest, DropsWhenPartitioned) {
  RouterHarness h(Line(3, SimDuration::Millis(10)), 1.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(100));
  OracleRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_FALSE(h.sink.Delivered(message.id, NodeId(2)));
  // The oracle knew: it never transmitted at all.
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 0U);
}

TEST(OracleRouterTest, PlannedHopsNeverHitFailedLinks) {
  // Under heavy failures, every oracle data transmission must succeed at
  // the failure layer (losses are off): dropped_failure stays zero.
  Rng rng(4);
  RouterHarness h(RandomConnected(12, 5, rng), 0.3, 0.0, /*seed=*/9);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  for (std::uint32_t v = 1; v < 12; v += 2) {
    h.subscriptions.AddSubscription(topic, NodeId(v),
                                    SimDuration::Millis(400));
  }
  OracleRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  for (int burst = 0; burst < 30; ++burst) {
    h.PublishVia(router, topic);
    h.scheduler.RunUntil(h.scheduler.now() + SimDuration::Millis(700));
  }
  h.scheduler.Run();
  EXPECT_EQ(h.network.counters(TrafficClass::kData).dropped_failure, 0U);
  EXPECT_GT(h.network.counters(TrafficClass::kData).attempted, 0U);
}

TEST(OracleRouterTest, SharesCopiesAcrossSubscribers) {
  RouterHarness h(Line(4, SimDuration::Millis(10)), 0.0, 0.0);
  const TopicId topic = h.subscriptions.AddTopic(NodeId(0));
  h.subscriptions.AddSubscription(topic, NodeId(2), SimDuration::Millis(500));
  h.subscriptions.AddSubscription(topic, NodeId(3), SimDuration::Millis(500));
  OracleRouter router(h.Context());
  router.Rebuild(h.monitor.view());
  const Message message = h.PublishVia(router, topic);
  h.scheduler.Run();
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(2)));
  EXPECT_TRUE(h.sink.Delivered(message.id, NodeId(3)));
  EXPECT_EQ(h.network.counters(TrafficClass::kData).attempted, 3U);
}

}  // namespace
}  // namespace dcrd
