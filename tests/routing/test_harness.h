// Shared fixture for router-level tests: a graph, a network with
// configurable failure/loss processes, a monitor with fresh estimates, a
// subscription table, and a recording delivery sink.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "net/link_monitor.h"
#include "net/overlay_network.h"
#include "pubsub/publisher.h"
#include "pubsub/subscriptions.h"
#include "routing/router.h"

namespace dcrd::testing {

class RecordingSink final : public DeliverySink {
 public:
  struct Delivery {
    MessageId message;
    NodeId subscriber;
    SimTime arrival;
  };

  void OnDelivered(const Message& message, NodeId subscriber,
                   SimTime arrival) override {
    deliveries_.push_back(Delivery{message.id, subscriber, arrival});
  }

  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] std::size_t CountFor(MessageId message) const {
    std::size_t count = 0;
    for (const Delivery& d : deliveries_) count += d.message == message;
    return count;
  }
  [[nodiscard]] bool Delivered(MessageId message, NodeId subscriber) const {
    for (const Delivery& d : deliveries_) {
      if (d.message == message && d.subscriber == subscriber) return true;
    }
    return false;
  }
  [[nodiscard]] SimTime ArrivalOf(MessageId message, NodeId subscriber) const {
    for (const Delivery& d : deliveries_) {
      if (d.message == message && d.subscriber == subscriber) return d.arrival;
    }
    return SimTime::Max();
  }
  void Clear() { deliveries_.clear(); }

 private:
  std::vector<Delivery> deliveries_;
};

struct RouterHarness {
  Graph graph;
  Scheduler scheduler;
  // Owned here because LinkMonitor keeps a reference to its schedule — a
  // temporary in the mem-initializer would dangle (caught by ASan).
  FailureSchedule failures;
  OverlayNetwork network;
  LinkMonitor monitor;
  SubscriptionTable subscriptions;
  RecordingSink sink;
  std::uint64_t next_message_id = 0;

  RouterHarness(Graph g, double pf, double pl, std::uint64_t seed = 1)
      : graph(std::move(g)),
        failures(seed, pf),
        network(graph, scheduler, failures, pl, Rng(seed)),
        monitor(graph, failures, MonitorConfigFor(pl), Rng(seed + 1)) {
    monitor.MeasureAt(SimTime::Zero());
  }

  static LinkMonitorConfig MonitorConfigFor(double pl) {
    LinkMonitorConfig config;
    config.loss_rate = pl;
    return config;
  }

  [[nodiscard]] RouterContext Context(int m = 1) {
    RouterContext context;
    context.network = &network;
    context.subscriptions = &subscriptions;
    context.sink = &sink;
    context.max_transmissions = m;
    return context;
  }

  Message PublishVia(Router& router, TopicId topic) {
    Message message;
    message.id = MessageId(next_message_id++);
    message.topic = topic;
    message.publisher = subscriptions.publisher(topic);
    message.publish_time = scheduler.now();
    router.Publish(message);
    return message;
  }
};

}  // namespace dcrd::testing
