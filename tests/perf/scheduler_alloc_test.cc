// Regression tests for the scheduler's zero-steady-state-allocation
// property. The slot-map slab and the binary heap grow while the event
// population climbs to its high-water mark (warm-up); after that, every
// ScheduleAt/Cancel/Step cycle must run without touching the heap
// allocator. A single allocation here is a lost property, not a slowdown —
// fail loudly.
#include <gtest/gtest.h>

#include "event/scheduler.h"
#include "support/alloc_counter.h"

namespace dcrd {
namespace {

using test::AllocProbe;

TEST(SchedulerAllocTest, ScheduleRunCycleIsAllocationFreeAfterWarmup) {
  Scheduler scheduler;
  std::uint64_t fired = 0;
  // Warm-up: grow the heap vector and the action slab to 256 concurrent
  // events, then drain.
  for (int i = 0; i < 256; ++i) {
    scheduler.ScheduleAfter(SimDuration::Micros(i + 1), [&fired] { ++fired; });
  }
  scheduler.Run();

  AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      scheduler.ScheduleAfter(SimDuration::Micros(i + 1),
                              [&fired] { ++fired; });
    }
    scheduler.Run();
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "schedule/run cycle allocated " << delta.bytes << " bytes";
  EXPECT_EQ(fired, 256u * 101u);
}

TEST(SchedulerAllocTest, ScheduleCancelCycleIsAllocationFreeAfterWarmup) {
  // The ACK-timer pattern: nearly every timer is cancelled before firing.
  Scheduler scheduler;
  std::vector<EventHandle> handles;
  handles.reserve(512);
  for (int i = 0; i < 512; ++i) {
    handles.push_back(scheduler.ScheduleAfter(SimDuration::Millis(60), [] {}));
  }
  for (EventHandle handle : handles) scheduler.Cancel(handle);
  scheduler.Run();

  AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    handles.clear();
    for (int i = 0; i < 512; ++i) {
      handles.push_back(
          scheduler.ScheduleAfter(SimDuration::Millis(60), [] {}));
    }
    for (EventHandle handle : handles) scheduler.Cancel(handle);
    scheduler.Run();
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "schedule/cancel cycle allocated " << delta.bytes << " bytes";
}

TEST(SchedulerAllocTest, WheelSteadyStateWithCascadesIsAllocationFree) {
  // Delays spread across all three wheel levels: every round exercises
  // level-1/2 inserts and the cascades that bring them down. Cascading
  // relinks pooled nodes — it must never touch the allocator.
  Scheduler scheduler;
  std::uint64_t fired = 0;
  const auto schedule_spread = [&] {
    for (int i = 0; i < 256; ++i) {
      const std::int64_t delay = 1 + (static_cast<std::int64_t>(i) * 131) %
                                         5'000'000;  // up to level 2
      scheduler.ScheduleAfter(SimDuration::Micros(delay),
                              [&fired] { ++fired; });
    }
  };
  schedule_spread();
  scheduler.Run();

  AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    schedule_spread();
    scheduler.Run();
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "cascading schedule/run cycle allocated " << delta.bytes << " bytes";
  EXPECT_EQ(fired, 256u * 101u);
}

TEST(SchedulerAllocTest, RearmChainIsAllocationFreeAfterWarmup) {
  // The HopTransport timer idiom: RearmCurrentAfter reuses the action slot
  // and a recycled wheel node, so a periodic timer never allocates after
  // its first arming.
  Scheduler scheduler;
  int fired = 0;
  scheduler.ScheduleAfter(SimDuration::Micros(100), [&] {
    if (++fired < 3) scheduler.RearmCurrentAfter(SimDuration::Micros(3000));
  });
  scheduler.Run();  // warm-up: slab slot + wheel node exist now
  ASSERT_EQ(fired, 3);

  AllocProbe probe;
  fired = 0;
  scheduler.ScheduleAfter(SimDuration::Micros(100), [&] {
    if (++fired < 1000) {
      scheduler.RearmCurrentAfter(SimDuration::Micros(3000));
    }
  });
  scheduler.Run();
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "re-arm chain allocated " << delta.bytes << " bytes";
  EXPECT_EQ(fired, 1000);
}

TEST(SchedulerAllocTest, CaptureAtInlineBudgetStaysInline) {
  // A capture of exactly the inline capacity must not fall back to the
  // heap (there is no fallback — this guards the budget constant itself).
  struct Fat {
    std::uint64_t a, b, c, d, e;  // 40 bytes; +8 for the sink pointer = 48
  };
  static_assert(sizeof(Fat) == 40);
  Scheduler scheduler;
  scheduler.ScheduleAfter(SimDuration::Micros(1), [] {});  // warm one slot
  scheduler.Run();

  AllocProbe probe;
  Fat fat{1, 2, 3, 4, 5};
  std::uint64_t sink = 0;
  scheduler.ScheduleAfter(SimDuration::Micros(1),
                          [fat, &sink] { sink = fat.a + fat.e; });
  scheduler.Run();
  EXPECT_EQ(probe.delta().allocations, 0u);
  EXPECT_EQ(sink, 6u);
}

}  // namespace
}  // namespace dcrd
