// Regression test for the ShardExchange zero-steady-state-allocation
// property promised in net/shard_exchange.h: Reset() rewinds the used
// counter without destroying elements, so XMsg slots — including the
// Packet destination/path buffers inside them — park in place and a
// steady-state window's worth of cross-shard hand-off never touches the
// heap allocator. Every slot in the measured region is filled through the
// same Append/assign path the sharded engine uses.
#include <gtest/gtest.h>

#include <cstdint>

#include "net/shard_exchange.h"
#include "support/alloc_counter.h"

namespace dcrd {
namespace {

using test::AllocProbe;

Packet TemplatePacket() {
  Message message;
  message.id = MessageId(1);
  message.topic = TopicId(0);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::Zero();
  Packet packet(message, {NodeId(1), NodeId(2), NodeId(3)});
  // A few routing-path stamps, like a packet that crossed several brokers
  // before the shard boundary.
  packet.RecordOnPath(NodeId(0));
  packet.RecordOnPath(NodeId(4));
  packet.RecordOnPath(NodeId(2));
  return packet;
}

// One round = one synchronization window: every shard pair hands off a
// burst of data copies, the receivers walk their queues, and the barrier
// rewinds them.
void RunRound(ShardExchange& exchange, const Packet& proto, int burst,
              std::uint64_t& drained) {
  const int shards = exchange.shards();
  for (int src = 0; src < shards; ++src) {
    for (int dst = 0; dst < shards; ++dst) {
      if (src == dst) continue;
      for (int i = 0; i < burst; ++i) {
        XMsg& msg = exchange.Append(src, dst);
        msg.kind = XMsgKind::kData;
        msg.at = 1'000'000 + i;
        msg.k1 = static_cast<std::uint64_t>(i) << 20;
        msg.k2 = static_cast<std::uint64_t>(i);
        msg.to = NodeId(dst);
        msg.from = NodeId(src);
        msg.link = LinkId(0);
        msg.copy_id = static_cast<std::uint64_t>(i);
        msg.tx_index = 0;
        // Copy-assignment into the recycled slot: the slot's vectors must
        // reuse their parked capacity.
        msg.packet = proto;
      }
    }
  }
  for (int src = 0; src < shards; ++src) {
    for (int dst = 0; dst < shards; ++dst) {
      const std::size_t count = exchange.Count(src, dst);
      for (std::size_t i = 0; i < count; ++i) {
        drained += exchange.Message(src, dst, i).packet.destinations().size();
      }
      exchange.Reset(src, dst);
    }
  }
}

TEST(ExchangeAllocTest, SteadyStateHandOffIsAllocationFreeAfterWarmup) {
  ShardExchange exchange(4);
  const Packet proto = TemplatePacket();
  std::uint64_t drained = 0;
  // Warm-up: grow every (src,dst) queue past the measured burst so the
  // measured rounds only ever hit recycled slots.
  for (int round = 0; round < 3; ++round) {
    RunRound(exchange, proto, /*burst=*/64, drained);
  }
  EXPECT_FALSE(exchange.AnyPending());

  AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    RunRound(exchange, proto, /*burst=*/64, drained);
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "cross-shard hand-off allocated " << delta.bytes << " bytes";
  // 4 shards -> 12 ordered pairs, 64 copies each, 3 destinations per copy.
  EXPECT_EQ(drained, 103u * 12u * 64u * 3u);
  EXPECT_FALSE(exchange.AnyPending());
}

}  // namespace
}  // namespace dcrd
