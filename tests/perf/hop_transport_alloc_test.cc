// Regression tests for the transport's zero-steady-state-allocation
// property. After the pending/wire slabs and the dedup tables reach the
// run's high-water mark, a complete send/ACK round trip — including
// retransmissions, timeout timers, and dedup bookkeeping — must not touch
// the heap allocator. Packets in the measured region carry empty
// destination/path vectors so caller-side buffers cannot mask a transport
// allocation. Everything is seeded, so the test is deterministic.
#include <gtest/gtest.h>

#include <cstdint>

#include "event/scheduler.h"
#include "graph/topology.h"
#include "net/overlay_network.h"
#include "routing/hop_transport.h"
#include "support/alloc_counter.h"

namespace dcrd {
namespace {

using test::AllocProbe;

Packet EmptyPacket(std::uint64_t id) {
  Message message;
  message.id = MessageId(id);
  message.topic = TopicId(0);
  message.publisher = NodeId(0);
  message.publish_time = SimTime::Zero();
  return Packet(message, {});
}

struct Fixture {
  Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
};

// One round = a burst of sends, a full drain, and a dedup-epoch rotation —
// the same cycle the engine drives once per monitoring epoch.
void RunRound(Fixture& f, HopTransport& transport, int burst, int max_tx,
              std::uint64_t& id, std::uint64_t& acks) {
  for (int i = 0; i < burst; ++i) {
    transport.SendReliable(NodeId(0), f.link, EmptyPacket(++id), max_tx,
                           SimDuration::Millis(25),
                           [&acks](bool ok) { acks += ok ? 1 : 0; });
  }
  f.scheduler.Run();
  transport.ClearDedupState();
}

TEST(HopTransportAllocTest, SendAckRoundTripIsAllocationFreeAfterWarmup) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1));
  std::uint64_t arrivals = 0;
  HopTransport transport(network,
                         [&arrivals](NodeId, const Packet&, NodeId) {
                           ++arrivals;
                         });
  std::uint64_t id = 0;
  std::uint64_t acks = 0;
  // Warm-up: reach the in-flight high-water mark (64 concurrent copies) and
  // size the dedup tables, then rotate both generations to capacity.
  for (int round = 0; round < 3; ++round) {
    RunRound(f, transport, /*burst=*/64, /*max_tx=*/1, id, acks);
  }

  AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    RunRound(f, transport, /*burst=*/64, /*max_tx=*/1, id, acks);
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "send/ACK round trip allocated " << delta.bytes << " bytes";
  EXPECT_EQ(acks, 64u * 103u);
  EXPECT_EQ(arrivals, 64u * 103u);
  EXPECT_EQ(transport.pending_count(), 0u);
}

TEST(HopTransportAllocTest, LossyRetransmissionPathIsAllocationFreeToo) {
  // Heavy loss exercises the full machinery: retransmissions, timeout
  // rescheduling, give-up tombstones, straggler-ACK classification, and the
  // adaptive RTO estimator — all of it slab- or table-backed.
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(7, 0.0), 0.5,
                         Rng(7));
  HopTransportConfig config;
  config.adaptive_rto = true;
  std::uint64_t arrivals = 0;
  HopTransport transport(network,
                         [&arrivals](NodeId, const Packet&, NodeId) {
                           ++arrivals;
                         },
                         config);
  std::uint64_t id = 0;
  std::uint64_t acks = 0;
  // Warm up with a 4x larger burst than the measured rounds. Per-round
  // insert counts into the dedup/tombstone tables are loss-dependent random
  // variables; a same-sized warm-up can land just under a growth threshold
  // that a later round crosses. A 256-copy burst drives every slab and
  // table to a capacity strictly above anything a 64-copy round can need.
  for (int round = 0; round < 3; ++round) {
    RunRound(f, transport, /*burst=*/256, /*max_tx=*/4, id, acks);
  }

  AllocProbe probe;
  for (int round = 0; round < 100; ++round) {
    RunRound(f, transport, /*burst=*/64, /*max_tx=*/4, id, acks);
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "lossy round trip allocated " << delta.bytes << " bytes";
  EXPECT_GT(acks, 0u);
  EXPECT_GT(arrivals, 0u);
  EXPECT_EQ(transport.pending_count(), 0u);
}

}  // namespace
}  // namespace dcrd
