// Regression test for the time-series sampler's zero-steady-state-
// allocation property (DESIGN.md §14). Construction reserves every column
// against the sample budget; after that, each SampleNow() — counter deltas,
// gauge reads, histogram bucket diffs, broker health — must run without
// touching the heap allocator, or enabling --timeseries would perturb the
// allocator state figure runs are benchmarked under.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "event/scheduler.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "support/alloc_counter.h"

namespace dcrd {
namespace {

using test::AllocProbe;

TEST(TimeSeriesAllocTest, SamplingIsAllocationFreeAfterConstruction) {
  MetricsRegistry registry;
  std::uint64_t* work = registry.AddCounter("test.work");
  std::uint64_t level = 0;
  registry.RegisterGauge("test.level", [&level] { return level; });
  LogLinearHistogram* delay = registry.AddHistogram("test.delay_us");

  Scheduler scheduler;
  TimeSeriesConfig config;
  config.interval = SimDuration::Seconds(1);
  config.end = SimTime::FromMicros(300 * 1000000LL);
  config.node_count = 64;
  std::vector<BrokerHealth> health_model(64);
  // Construction takes the baseline sample and reserves the full budget.
  TimeSeriesSampler sampler(
      registry, scheduler, config,
      [&health_model](std::vector<BrokerHealth>& out) {
        out = health_model;  // same size: copies in place, no allocation
      });

  // Warm-up: the chain schedules its next event while the current wheel
  // node is still in flight, so the node pool grows to two on the first
  // firing — a one-time cost, like the scheduler tests' warm-up rounds.
  scheduler.RunUntil(SimTime::FromMicros(2 * 1000000LL));

  // Steady state: mutate every metric kind between samples, spreading
  // histogram values across bucket groups so the delta pool keeps filling.
  AllocProbe probe;
  std::uint64_t lcg = 7;
  for (int s = 3; s <= 200; ++s) {
    lcg = lcg * 1664525 + 1013904223;
    *work += lcg & 1023;
    level = lcg % 17;
    for (int i = 0; i < 8; ++i) {
      lcg = lcg * 1664525 + 1013904223;
      delay->Record(static_cast<std::int64_t>(lcg % 10000000));
    }
    health_model[lcg % 64].pending_copies = s;
    scheduler.RunUntil(SimTime::FromMicros(s * 1000000LL));
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "198 sampling rounds allocated " << delta.bytes << " bytes";
  EXPECT_EQ(sampler.store().samples(), 201u);
}

}  // namespace
}  // namespace dcrd
