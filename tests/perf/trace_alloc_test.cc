// Regression tests for the flight recorder's zero-steady-state-allocation
// property. With tracing enabled, the record path is an assignment into the
// preallocated ring, and the sink flush path formats into a stack buffer —
// neither may touch the heap, even across ring wraps. The sink writes into
// a fixed discarding streambuf so stream growth cannot mask (or cause) an
// allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <ostream>
#include <streambuf>

#include "event/scheduler.h"
#include "graph/topology.h"
#include "net/overlay_network.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "routing/hop_transport.h"
#include "support/alloc_counter.h"

namespace dcrd {
namespace {

using test::AllocProbe;

// Discards everything written to it without buffering or allocating.
class NullStreambuf final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

FlightRecorder::Config SmallRing() {
  FlightRecorder::Config config;
  config.ring_capacity = 512;
  return config;
}

TEST(TraceAllocTest, RecordAndRingWrapAreAllocationFree) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing());
  recorder.set_enabled(true);

  AllocProbe probe;
  // 16x the ring capacity: wraps the ring many times over.
  for (std::uint64_t i = 0; i < 512 * 16; ++i) {
    recorder.Record(TraceEventKind::kHopSend, i, i, NodeId(0), NodeId(1),
                    LinkId(0), 0, static_cast<std::uint16_t>(i));
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "ring recording allocated " << delta.bytes << " bytes";
  EXPECT_EQ(recorder.total_recorded(), 512u * 16u);
}

TEST(TraceAllocTest, SinkFlushPathIsAllocationFree) {
  Scheduler scheduler;
  FlightRecorder recorder(scheduler, SmallRing());
  recorder.set_enabled(true);
  NullStreambuf devnull;
  std::ostream sink(&devnull);
  recorder.set_sink(&sink);

  AllocProbe probe;
  for (std::uint64_t i = 0; i < 512 * 16; ++i) {
    recorder.Record(TraceEventKind::kAck, i, i, NodeId(2), NodeId(3),
                    LinkId(1));
  }
  recorder.Flush();
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "sink flush allocated " << delta.bytes << " bytes";
  EXPECT_EQ(recorder.overwritten(), 0u);
}

TEST(TraceAllocTest, HistogramRecordIsAllocationFree) {
  LogLinearHistogram histogram;
  AllocProbe probe;
  for (std::int64_t v = 0; v < 100000; ++v) {
    histogram.Record(v * 37);
  }
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u);
  EXPECT_EQ(histogram.count(), 100000u);
}

// The full instrumented transport round trip — enqueue/hop-send/ack records
// plus the RTT histogram — on top of the transport's own zero-alloc
// guarantee. Mirrors hop_transport_alloc_test's fixture.
TEST(TraceAllocTest, TracedTransportRoundTripIsAllocationFreeAfterWarmup) {
  Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1));

  FlightRecorder recorder(scheduler, SmallRing());
  recorder.set_enabled(true);
  NullStreambuf devnull;
  std::ostream sink(&devnull);
  recorder.set_sink(&sink);
  LogLinearHistogram rtt;
  network.set_flight_recorder(&recorder);

  HopTransportConfig config;
  config.recorder = &recorder;
  config.rtt_histogram = &rtt;
  HopTransport transport(network, [](NodeId, const Packet&, NodeId) {},
                         config);

  std::uint64_t id = 0;
  std::uint64_t acks = 0;
  const auto run_round = [&] {
    for (int i = 0; i < 64; ++i) {
      Message message;
      message.id = MessageId(++id);
      message.topic = TopicId(0);
      message.publisher = NodeId(0);
      message.publish_time = SimTime::Zero();
      transport.SendReliable(NodeId(0), link, Packet(message, {}), 1,
                             SimDuration::Millis(25),
                             [&acks](bool ok) { acks += ok ? 1 : 0; });
    }
    scheduler.Run();
    transport.ClearDedupState();
  };
  for (int round = 0; round < 3; ++round) run_round();

  AllocProbe probe;
  for (int round = 0; round < 50; ++round) run_round();
  const auto delta = probe.delta();
  EXPECT_EQ(delta.allocations, 0u)
      << "traced round trip allocated " << delta.bytes << " bytes";
  EXPECT_EQ(acks, 64u * 53u);
  EXPECT_GT(rtt.count(), 0u);
}

}  // namespace
}  // namespace dcrd
