#include "graph/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "common/rng.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

Graph Random(std::size_t nodes, std::size_t degree, std::uint64_t seed) {
  Rng rng(seed);
  return RandomConnected(nodes, degree, rng,
                         {SimDuration::Millis(10), SimDuration::Millis(50)});
}

TEST(PartitionTest, BfsCoversEveryNodeAndBalancesWithinOne) {
  const Graph graph = Random(23, 4, 7);
  for (const int shards : {1, 2, 3, 8}) {
    const std::vector<int> owner = BfsContiguousPartition(graph, shards);
    ASSERT_EQ(owner.size(), graph.node_count());
    std::vector<int> counts(shards, 0);
    for (const int s : owner) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      ++counts[s];
    }
    const auto [min_it, max_it] =
        std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*max_it - *min_it, 1) << shards << " shards";
  }
}

TEST(PartitionTest, BfsIsDeterministic) {
  const Graph graph = Random(30, 4, 11);
  EXPECT_EQ(BfsContiguousPartition(graph, 4),
            BfsContiguousPartition(graph, 4));
}

TEST(PartitionTest, BfsCutsFewerEdgesThanRoundRobin) {
  // The whole point of the BFS layout: neighbourhoods stay together. On a
  // sparse random overlay it must beat the adversarial striping.
  const Graph graph = Random(40, 4, 13);
  const auto cut_edges = [&](const std::vector<int>& owner) {
    std::size_t cut = 0;
    for (std::size_t i = 0; i < graph.edge_count(); ++i) {
      const EdgeSpec& edge =
          graph.edge(LinkId(static_cast<LinkId::underlying_type>(i)));
      if (owner[edge.a.underlying()] != owner[edge.b.underlying()]) ++cut;
    }
    return cut;
  };
  EXPECT_LT(cut_edges(BfsContiguousPartition(graph, 4)),
            cut_edges(RoundRobinPartition(graph.node_count(), 4)));
}

TEST(PartitionTest, RoundRobinStripes) {
  const std::vector<int> owner = RoundRobinPartition(7, 3);
  EXPECT_EQ(owner, (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(PartitionTest, ShardCountClampedToNodeCount) {
  const Graph graph = Random(5, 2, 17);
  const std::vector<int> owner = BfsContiguousPartition(graph, 16);
  std::set<int> used(owner.begin(), owner.end());
  EXPECT_EQ(used.size(), 5U);  // five shards, one node each
}

TEST(PartitionTest, MinCrossShardDelayScalesForWorstCaseShrink) {
  // Two nodes, one 10ms edge, always cut by a 2-shard partition.
  Graph graph(2);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(10));
  const std::vector<int> owner{0, 1};
  EXPECT_EQ(MinCrossShardDelayMicros(graph, owner, 0.0, 3.0, 0.0), 10'000);
  // 20% jitter: low side is 0.8x.
  EXPECT_EQ(MinCrossShardDelayMicros(graph, owner, 0.2, 3.0, 0.0), 8'000);
  // Gray shrink below 1 only counts when the gray process is on.
  EXPECT_EQ(MinCrossShardDelayMicros(graph, owner, 0.0, 0.5, 0.0), 10'000);
  EXPECT_EQ(MinCrossShardDelayMicros(graph, owner, 0.0, 0.5, 0.1), 5'000);
  // Jitter of 1.0 erases the lookahead entirely.
  EXPECT_EQ(MinCrossShardDelayMicros(graph, owner, 1.0, 3.0, 0.0), 0);
}

TEST(PartitionTest, MinCrossShardDelaySentinelWhenNothingCrosses) {
  const Graph graph = Random(10, 3, 19);
  const std::vector<int> owner(graph.node_count(), 0);  // all on shard 0
  EXPECT_EQ(MinCrossShardDelayMicros(graph, owner, 0.0, 3.0, 0.0),
            INT64_MAX);
}

}  // namespace
}  // namespace dcrd
