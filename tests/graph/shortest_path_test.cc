#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

// Diamond: 0-1 (10ms), 0-2 (1ms), 2-1 (2ms), 1-3 (1ms).
// Shortest delay 0->1 is via 2 (3ms); shortest hops 0->1 is direct.
Graph Diamond() {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(10));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(2), NodeId(1), SimDuration::Millis(2));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(1));
  return graph;
}

TEST(ShortestDelayTreeTest, PrefersLowerDelayOverFewerHops) {
  const Graph graph = Diamond();
  const PathTree tree = ShortestDelayTree(graph, NodeId(0));
  EXPECT_EQ(tree.distance[1], SimDuration::Millis(3));
  EXPECT_EQ(tree.PathTo(NodeId(1)),
            (std::vector<NodeId>{NodeId(0), NodeId(2), NodeId(1)}));
  EXPECT_EQ(tree.distance[3], SimDuration::Millis(4));
  EXPECT_EQ(tree.hops[1], 2U);
}

TEST(ShortestHopTreeTest, PrefersFewerHops) {
  const Graph graph = Diamond();
  const PathTree tree = ShortestHopTree(graph, NodeId(0));
  EXPECT_EQ(tree.PathTo(NodeId(1)),
            (std::vector<NodeId>{NodeId(0), NodeId(1)}));
  EXPECT_EQ(tree.hops[1], 1U);
  EXPECT_EQ(tree.distance[1], SimDuration::Millis(10));
}

TEST(ShortestHopTreeTest, BreaksHopTiesByDelay) {
  // Two 2-hop routes 0->3: via 1 (3ms) and via 2 (2ms).
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(2));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(2), NodeId(3), SimDuration::Millis(1));
  const PathTree tree = ShortestHopTree(graph, NodeId(0));
  EXPECT_EQ(tree.PathTo(NodeId(3)),
            (std::vector<NodeId>{NodeId(0), NodeId(2), NodeId(3)}));
}

TEST(PathTreeTest, SourceProperties) {
  const Graph graph = Diamond();
  const PathTree tree = ShortestDelayTree(graph, NodeId(0));
  EXPECT_EQ(tree.distance[0], SimDuration::Zero());
  EXPECT_EQ(tree.PathTo(NodeId(0)), (std::vector<NodeId>{NodeId(0)}));
  EXPECT_TRUE(tree.LinksTo(NodeId(0)).empty());
  EXPECT_FALSE(tree.parent[0].valid());
}

TEST(PathTreeTest, UnreachableNode) {
  Graph graph(3);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  const PathTree tree = ShortestDelayTree(graph, NodeId(0));
  EXPECT_FALSE(tree.Reachable(NodeId(2)));
  EXPECT_TRUE(tree.PathTo(NodeId(2)).empty());
  EXPECT_EQ(tree.distance[2], SimDuration::Max());
}

TEST(PathTreeTest, LinksToMatchesPathTo) {
  const Graph graph = Diamond();
  const PathTree tree = ShortestDelayTree(graph, NodeId(0));
  const auto nodes = tree.PathTo(NodeId(3));
  const auto links = tree.LinksTo(NodeId(3));
  ASSERT_EQ(links.size(), nodes.size() - 1);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const EdgeSpec& edge = graph.edge(links[i]);
    EXPECT_TRUE((edge.a == nodes[i] && edge.b == nodes[i + 1]) ||
                (edge.b == nodes[i] && edge.a == nodes[i + 1]));
  }
}

TEST(ShortestPathTest, DelayOverrideChangesRouting) {
  const Graph graph = Diamond();
  // Pretend the 0-2 link is slow: direct 0-1 becomes best.
  const LinkDelayFn slow02 = [&graph](LinkId link) {
    const EdgeSpec& edge = graph.edge(link);
    if ((edge.a == NodeId(0) && edge.b == NodeId(2)) ||
        (edge.a == NodeId(2) && edge.b == NodeId(0))) {
      return SimDuration::Millis(100);
    }
    return edge.delay;
  };
  const PathTree tree = ShortestDelayTree(graph, NodeId(0), slow02);
  EXPECT_EQ(tree.PathTo(NodeId(1)),
            (std::vector<NodeId>{NodeId(0), NodeId(1)}));
}

TEST(ShortestPathTest, LinkFilterExcludesEdges) {
  const Graph graph = Diamond();
  const auto link02 = graph.FindEdge(NodeId(0), NodeId(2));
  const LinkFilterFn admit = [&](LinkId link) { return link != *link02; };
  const PathTree tree = ShortestDelayTree(graph, NodeId(0), nullptr, admit);
  EXPECT_EQ(tree.PathTo(NodeId(1)),
            (std::vector<NodeId>{NodeId(0), NodeId(1)}));
  EXPECT_EQ(tree.PathTo(NodeId(2)),
            (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));
}

TEST(ShortestPathTest, MatchesBruteForceOnRandomGraphs) {
  // Floyd–Warshall cross-check on random overlays.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const Graph graph = RandomConnected(12, 4, rng);
    const std::size_t n = graph.node_count();
    std::vector<std::vector<std::int64_t>> dist(
        n, std::vector<std::int64_t>(n, INT64_MAX / 4));
    for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0;
    for (const EdgeSpec& edge : graph.edges()) {
      const auto a = edge.a.underlying(), b = edge.b.underlying();
      dist[a][b] = std::min(dist[a][b], edge.delay.micros());
      dist[b][a] = dist[a][b];
    }
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
        }
      }
    }
    const PathTree tree = ShortestDelayTree(graph, NodeId(0));
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(tree.distance[v].micros(), dist[0][v])
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(TimeAwareShortestPathTest, NoFailuresMatchesPlainDijkstra) {
  const Graph graph = Diamond();
  const auto always_up = [](LinkId, SimTime) { return true; };
  const auto path = TimeAwareShortestPath(graph, NodeId(0), NodeId(3),
                                          SimTime::Zero(), always_up);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes,
            (std::vector<NodeId>{NodeId(0), NodeId(2), NodeId(1), NodeId(3)}));
  EXPECT_EQ(path->arrival, SimTime::Zero() + SimDuration::Millis(4));
}

TEST(TimeAwareShortestPathTest, AvoidsLinkFailedAtEntryTime) {
  const Graph graph = Diamond();
  const auto link02 = *graph.FindEdge(NodeId(0), NodeId(2));
  // 0-2 is down exactly at departure: the plan must go direct.
  const auto up_at = [&](LinkId link, SimTime t) {
    return !(link == link02 && t < SimTime::FromMicros(500));
  };
  const auto path = TimeAwareShortestPath(graph, NodeId(0), NodeId(1),
                                          SimTime::Zero(), up_at);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{NodeId(0), NodeId(1)}));
}

TEST(TimeAwareShortestPathTest, AvoidsLinkThatWillFailMidFlight) {
  // Path 0-2-1: link 2-1 would be entered at t=1ms; fail it then.
  const Graph graph = Diamond();
  const auto link21 = *graph.FindEdge(NodeId(2), NodeId(1));
  const auto up_at = [&](LinkId link, SimTime t) {
    return !(link == link21 && t >= SimTime::FromMicros(900) &&
             t <= SimTime::FromMicros(1100));
  };
  const auto path = TimeAwareShortestPath(graph, NodeId(0), NodeId(1),
                                          SimTime::Zero(), up_at);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{NodeId(0), NodeId(1)}));
}

TEST(TimeAwareShortestPathTest, ReturnsNulloptWhenCut) {
  Graph graph(2);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  const auto never_up = [](LinkId, SimTime) { return false; };
  EXPECT_FALSE(TimeAwareShortestPath(graph, NodeId(0), NodeId(1),
                                     SimTime::Zero(), never_up)
                   .has_value());
}

TEST(TimeAwareShortestPathTest, DepartureTimeShiftsArrival) {
  const Graph graph = Diamond();
  const auto always_up = [](LinkId, SimTime) { return true; };
  const SimTime depart = SimTime::FromMicros(5'000'000);
  const auto path = TimeAwareShortestPath(graph, NodeId(0), NodeId(3),
                                          depart, always_up);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->arrival, depart + SimDuration::Millis(4));
}

}  // namespace
}  // namespace dcrd
