#include "graph/topology.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"

namespace dcrd {
namespace {

TEST(FullMeshTest, EveryPairConnected) {
  Rng rng(1);
  const Graph graph = FullMesh(8, rng);
  EXPECT_EQ(graph.edge_count(), 8U * 7U / 2U);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(graph.degree(NodeId(static_cast<NodeId::underlying_type>(i))),
              7U);
  }
  EXPECT_TRUE(IsConnected(graph));
}

TEST(FullMeshTest, DelaysWithinPaperRange) {
  Rng rng(2);
  const Graph graph = FullMesh(20, rng);
  for (const EdgeSpec& edge : graph.edges()) {
    EXPECT_GE(edge.delay, SimDuration::Millis(10));
    EXPECT_LE(edge.delay, SimDuration::Millis(50));
  }
}

TEST(FullMeshTest, DelaysVary) {
  Rng rng(3);
  const Graph graph = FullMesh(20, rng);
  SimDuration min = SimDuration::Max(), max = SimDuration::Zero();
  for (const EdgeSpec& edge : graph.edges()) {
    min = std::min(min, edge.delay);
    max = std::max(max, edge.delay);
  }
  EXPECT_LT(min + SimDuration::Millis(5), max);
}

TEST(RandomConnectedTest, ConnectedAtEveryDegree) {
  for (std::size_t degree = 2; degree <= 10; ++degree) {
    Rng rng(degree);
    const Graph graph = RandomConnected(20, degree, rng);
    EXPECT_TRUE(IsConnected(graph)) << "degree " << degree;
  }
}

TEST(RandomConnectedTest, DegreeBounds) {
  Rng rng(9);
  const Graph graph = RandomConnected(20, 5, rng);
  std::size_t at_target = 0;
  for (std::size_t v = 0; v < 20; ++v) {
    const std::size_t degree =
        graph.degree(NodeId(static_cast<NodeId::underlying_type>(v)));
    EXPECT_GE(degree, 2U);
    EXPECT_LE(degree, 5U);
    at_target += degree == 5 ? 1 : 0;
  }
  // The greedy augmentation leaves at most a small residue below target.
  EXPECT_GE(at_target, 16U);
}

TEST(RandomConnectedTest, DeterministicForSeed) {
  Rng rng_a(42), rng_b(42);
  const Graph a = RandomConnected(15, 4, rng_a);
  const Graph b = RandomConnected(15, 4, rng_b);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t e = 0; e < a.edge_count(); ++e) {
    const LinkId link(static_cast<LinkId::underlying_type>(e));
    EXPECT_EQ(a.edge(link).a, b.edge(link).a);
    EXPECT_EQ(a.edge(link).b, b.edge(link).b);
    EXPECT_EQ(a.edge(link).delay, b.edge(link).delay);
  }
}

TEST(RandomConnectedTest, DifferentSeedsDiffer) {
  Rng rng_a(1), rng_b(2);
  const Graph a = RandomConnected(15, 4, rng_a);
  const Graph b = RandomConnected(15, 4, rng_b);
  bool differs = a.edge_count() != b.edge_count();
  for (std::size_t e = 0; !differs && e < a.edge_count(); ++e) {
    const LinkId link(static_cast<LinkId::underlying_type>(e));
    differs = a.edge(link).a != b.edge(link).a ||
              a.edge(link).b != b.edge(link).b;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomConnectedTest, LargeNetworkSizes) {
  // The Fig. 5 sizes must all generate quickly and connected.
  for (std::size_t n : {10U, 20U, 40U, 80U, 120U, 160U}) {
    Rng rng(n);
    const Graph graph = RandomConnected(n, 8, rng);
    EXPECT_TRUE(IsConnected(graph));
    EXPECT_EQ(graph.node_count(), n);
  }
}

TEST(RingTest, Shape) {
  const Graph graph = Ring(5, SimDuration::Millis(10));
  EXPECT_EQ(graph.edge_count(), 5U);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(graph.degree(NodeId(static_cast<NodeId::underlying_type>(v))),
              2U);
  }
  EXPECT_TRUE(IsConnected(graph));
}

TEST(LineTest, Shape) {
  const Graph graph = Line(4, SimDuration::Millis(10));
  EXPECT_EQ(graph.edge_count(), 3U);
  EXPECT_EQ(graph.degree(NodeId(0)), 1U);
  EXPECT_EQ(graph.degree(NodeId(1)), 2U);
  EXPECT_EQ(graph.degree(NodeId(3)), 1U);
}

TEST(StarTest, Shape) {
  const Graph graph = Star(6, SimDuration::Millis(10));
  EXPECT_EQ(graph.node_count(), 7U);
  EXPECT_EQ(graph.degree(NodeId(0)), 6U);
  EXPECT_EQ(graph.degree(NodeId(3)), 1U);
}

TEST(ConnectivityTest, ReachableFromRespectsFilter) {
  const Graph graph = Line(4, SimDuration::Millis(10));
  const auto link12 = *graph.FindEdge(NodeId(1), NodeId(2));
  const auto seen = ReachableFrom(graph, NodeId(0), [&](LinkId link) {
    return link != link12;
  });
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_FALSE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(ConnectivityTest, DisconnectedGraphDetected) {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(2), NodeId(3), SimDuration::Millis(1));
  EXPECT_FALSE(IsConnected(graph));
}

TEST(DrawLinkDelayTest, RespectsCustomRange) {
  Rng rng(4);
  const DelayRange range{SimDuration::Millis(2), SimDuration::Millis(3)};
  for (int i = 0; i < 1000; ++i) {
    const SimDuration delay = DrawLinkDelay(rng, range);
    EXPECT_GE(delay, range.min);
    EXPECT_LE(delay, range.max);
  }
}

}  // namespace
}  // namespace dcrd
