#include "graph/graph.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph graph(4);
  EXPECT_EQ(graph.node_count(), 4U);
  EXPECT_EQ(graph.edge_count(), 0U);
  EXPECT_TRUE(graph.neighbors(NodeId(0)).empty());
}

TEST(GraphTest, AddEdgePopulatesBothAdjacencies) {
  Graph graph(3);
  const LinkId link = graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(10));
  ASSERT_EQ(graph.neighbors(NodeId(0)).size(), 1U);
  ASSERT_EQ(graph.neighbors(NodeId(2)).size(), 1U);
  EXPECT_EQ(graph.neighbors(NodeId(0))[0].peer, NodeId(2));
  EXPECT_EQ(graph.neighbors(NodeId(0))[0].link, link);
  EXPECT_EQ(graph.neighbors(NodeId(2))[0].peer, NodeId(0));
  EXPECT_TRUE(graph.neighbors(NodeId(1)).empty());
}

TEST(GraphTest, EdgeLookup) {
  Graph graph(3);
  const LinkId link = graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(5));
  EXPECT_EQ(graph.FindEdge(NodeId(0), NodeId(1)), link);
  EXPECT_EQ(graph.FindEdge(NodeId(1), NodeId(0)), link);
  EXPECT_FALSE(graph.FindEdge(NodeId(0), NodeId(2)).has_value());
  EXPECT_TRUE(graph.HasEdge(NodeId(1), NodeId(0)));
}

TEST(GraphTest, EdgeSpecOtherEnd) {
  Graph graph(2);
  const LinkId link = graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(5));
  const EdgeSpec& edge = graph.edge(link);
  EXPECT_EQ(edge.OtherEnd(NodeId(0)), NodeId(1));
  EXPECT_EQ(edge.OtherEnd(NodeId(1)), NodeId(0));
  EXPECT_EQ(edge.delay, SimDuration::Millis(5));
}

TEST(GraphTest, DegreeCounts) {
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(0), NodeId(3), SimDuration::Millis(1));
  EXPECT_EQ(graph.degree(NodeId(0)), 3U);
  EXPECT_EQ(graph.degree(NodeId(1)), 1U);
}

TEST(GraphTest, AllNodesEnumerates) {
  Graph graph(3);
  const auto nodes = graph.AllNodes();
  ASSERT_EQ(nodes.size(), 3U);
  EXPECT_EQ(nodes[0], NodeId(0));
  EXPECT_EQ(nodes[2], NodeId(2));
}

TEST(GraphTest, LinkIdsAreDense) {
  Graph graph(4);
  EXPECT_EQ(graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1)),
            LinkId(0));
  EXPECT_EQ(graph.AddEdge(NodeId(1), NodeId(2), SimDuration::Millis(1)),
            LinkId(1));
  EXPECT_EQ(graph.edge_count(), 2U);
}

TEST(GraphDeathTest, RejectsSelfLoop) {
  Graph graph(2);
  EXPECT_DEATH(graph.AddEdge(NodeId(1), NodeId(1), SimDuration::Millis(1)),
               "self-loop");
}

TEST(GraphDeathTest, RejectsParallelEdge) {
  Graph graph(2);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  EXPECT_DEATH(graph.AddEdge(NodeId(1), NodeId(0), SimDuration::Millis(2)),
               "parallel edge");
}

TEST(GraphDeathTest, RejectsNonPositiveDelay) {
  Graph graph(2);
  EXPECT_DEATH(graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Zero()), "");
}

}  // namespace
}  // namespace dcrd
