#include "graph/yen_ksp.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

Graph TwoRoutes() {
  // 0-1-3 (3ms) and 0-2-3 (5ms), plus direct 0-3 (10ms).
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(2));
  graph.AddEdge(NodeId(0), NodeId(2), SimDuration::Millis(2));
  graph.AddEdge(NodeId(2), NodeId(3), SimDuration::Millis(3));
  graph.AddEdge(NodeId(0), NodeId(3), SimDuration::Millis(10));
  return graph;
}

TEST(YenTest, RanksPathsByDelay) {
  const Graph graph = TwoRoutes();
  const auto paths = YenKShortestPaths(graph, NodeId(0), NodeId(3), 3);
  ASSERT_EQ(paths.size(), 3U);
  EXPECT_EQ(paths[0].nodes,
            (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(3)}));
  EXPECT_EQ(paths[0].total_delay, SimDuration::Millis(3));
  EXPECT_EQ(paths[1].nodes,
            (std::vector<NodeId>{NodeId(0), NodeId(2), NodeId(3)}));
  EXPECT_EQ(paths[1].total_delay, SimDuration::Millis(5));
  EXPECT_EQ(paths[2].nodes, (std::vector<NodeId>{NodeId(0), NodeId(3)}));
}

TEST(YenTest, StopsWhenGraphExhausted) {
  const Graph graph = TwoRoutes();
  const auto paths = YenKShortestPaths(graph, NodeId(0), NodeId(3), 50);
  // The diamond supports a limited number of loopless paths; all distinct.
  std::set<std::vector<NodeId>> unique;
  for (const auto& path : paths) unique.insert(path.nodes);
  EXPECT_EQ(unique.size(), paths.size());
  EXPECT_LT(paths.size(), 50U);
}

TEST(YenTest, KZeroAndUnreachable) {
  const Graph graph = TwoRoutes();
  EXPECT_TRUE(YenKShortestPaths(graph, NodeId(0), NodeId(3), 0).empty());

  Graph split(3);
  split.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  EXPECT_TRUE(YenKShortestPaths(split, NodeId(0), NodeId(2), 5).empty());
}

TEST(YenTest, PathsAreLoopless) {
  Rng rng(77);
  const Graph graph = RandomConnected(15, 5, rng);
  const auto paths =
      YenKShortestPaths(graph, NodeId(0), NodeId(14), 8);
  for (const auto& path : paths) {
    std::set<NodeId> seen(path.nodes.begin(), path.nodes.end());
    EXPECT_EQ(seen.size(), path.nodes.size()) << "loop in path";
    EXPECT_EQ(path.nodes.front(), NodeId(0));
    EXPECT_EQ(path.nodes.back(), NodeId(14));
  }
}

TEST(YenTest, NondecreasingDelays) {
  Rng rng(78);
  const Graph graph = RandomConnected(15, 5, rng);
  const auto paths = YenKShortestPaths(graph, NodeId(1), NodeId(9), 8);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].total_delay, paths[i - 1].total_delay);
  }
}

TEST(YenTest, PathsFollowExistingEdgesWithConsistentDelay) {
  Rng rng(79);
  const Graph graph = RandomConnected(12, 4, rng);
  const auto paths = YenKShortestPaths(graph, NodeId(2), NodeId(7), 5);
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    ASSERT_EQ(path.links.size(), path.nodes.size() - 1);
    SimDuration total = SimDuration::Zero();
    for (std::size_t i = 0; i < path.links.size(); ++i) {
      const auto link = graph.FindEdge(path.nodes[i], path.nodes[i + 1]);
      ASSERT_TRUE(link.has_value());
      EXPECT_EQ(*link, path.links[i]);
      total += graph.edge(*link).delay;
    }
    EXPECT_EQ(total, path.total_delay);
  }
}

TEST(YenTest, RespectsDelayOverride) {
  const Graph graph = TwoRoutes();
  // Invert the economics: make 0-1 expensive.
  const LinkDelayFn cost = [&graph](LinkId link) {
    const EdgeSpec& edge = graph.edge(link);
    if ((edge.a == NodeId(0) && edge.b == NodeId(1)) ||
        (edge.a == NodeId(1) && edge.b == NodeId(0))) {
      return SimDuration::Millis(50);
    }
    return edge.delay;
  };
  const auto paths = YenKShortestPaths(graph, NodeId(0), NodeId(3), 1, cost);
  ASSERT_EQ(paths.size(), 1U);
  EXPECT_EQ(paths[0].nodes,
            (std::vector<NodeId>{NodeId(0), NodeId(2), NodeId(3)}));
}

TEST(SharedLinkCountTest, CountsIntersection) {
  const Graph graph = TwoRoutes();
  const auto paths = YenKShortestPaths(graph, NodeId(0), NodeId(3), 3);
  ASSERT_GE(paths.size(), 3U);
  EXPECT_EQ(SharedLinkCount(paths[0], paths[0]), paths[0].links.size());
  EXPECT_EQ(SharedLinkCount(paths[0], paths[1]), 0U);
  EXPECT_EQ(SharedLinkCount(paths[0], paths[2]), 0U);
}

TEST(SharedLinkCountTest, PartialOverlap) {
  // 0-1-2 and 0-1-3 share the 0-1 link.
  Graph graph(4);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(1));
  graph.AddEdge(NodeId(1), NodeId(2), SimDuration::Millis(1));
  graph.AddEdge(NodeId(1), NodeId(3), SimDuration::Millis(1));
  const auto to2 = YenKShortestPaths(graph, NodeId(0), NodeId(2), 1);
  const auto to3 = YenKShortestPaths(graph, NodeId(0), NodeId(3), 1);
  ASSERT_EQ(to2.size(), 1U);
  ASSERT_EQ(to3.size(), 1U);
  EXPECT_EQ(SharedLinkCount(to2[0], to3[0]), 1U);
}

}  // namespace
}  // namespace dcrd
