#include "graph/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/topology.h"

namespace dcrd {
namespace {

TEST(GraphIoTest, RoundTripPreservesEverything) {
  Rng rng(4);
  const Graph original = RandomConnected(15, 5, rng);
  std::stringstream buffer;
  WriteEdgeList(buffer, original);
  std::string error;
  const auto restored = ReadEdgeList(buffer, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  ASSERT_EQ(restored->node_count(), original.node_count());
  ASSERT_EQ(restored->edge_count(), original.edge_count());
  for (std::size_t e = 0; e < original.edge_count(); ++e) {
    const LinkId link(static_cast<LinkId::underlying_type>(e));
    EXPECT_EQ(restored->edge(link).a, original.edge(link).a);
    EXPECT_EQ(restored->edge(link).b, original.edge(link).b);
    EXPECT_EQ(restored->edge(link).delay, original.edge(link).delay);
  }
}

TEST(GraphIoTest, ParsesCommentsAndBlankLines) {
  std::istringstream input(
      "# a comment\n"
      "\n"
      "3\n"
      "# another\n"
      "0 1 15000\n"
      "1 2 20000\n");
  const auto graph = ReadEdgeList(input);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->node_count(), 3U);
  EXPECT_EQ(graph->edge_count(), 2U);
  EXPECT_EQ(graph->edge(LinkId(1)).delay, SimDuration::Millis(20));
}

TEST(GraphIoTest, RejectsMalformedInput) {
  const struct {
    const char* input;
    const char* expected_error;
  } cases[] = {
      {"", "empty input"},
      {"0\n", "positive node count"},
      {"abc\n", "positive node count"},
      {"3\n0 1\n", "expected `a b delay_us`"},
      {"3\n0 5 1000\n", "endpoint out of range"},
      {"3\n1 1 1000\n", "self-loop"},
      {"3\n0 1 0\n", "non-positive delay"},
      {"3\n0 1 1000\n1 0 2000\n", "duplicate edge"},
  };
  for (const auto& test_case : cases) {
    std::istringstream input(test_case.input);
    std::string error;
    EXPECT_FALSE(ReadEdgeList(input, &error).has_value())
        << test_case.input;
    EXPECT_NE(error.find(test_case.expected_error), std::string::npos)
        << "got: " << error;
  }
}

TEST(GraphIoTest, ErrorMentionsLineNumber) {
  std::istringstream input("3\n0 1 1000\n0 9 1000\n");
  std::string error;
  ASSERT_FALSE(ReadEdgeList(input, &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(GraphIoTest, DotOutputHasNodesAndLabeledEdges) {
  Graph graph(2);
  graph.AddEdge(NodeId(0), NodeId(1), SimDuration::Millis(25));
  const std::string dot = ToDot(graph);
  EXPECT_NE(dot.find("graph overlay {"), std::string::npos);
  EXPECT_NE(dot.find("n0;"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("25ms"), std::string::npos);
}

TEST(GraphIoTest, NullErrorPointerIsSafe) {
  std::istringstream input("bogus\n");
  EXPECT_FALSE(ReadEdgeList(input, nullptr).has_value());
}

}  // namespace
}  // namespace dcrd
