// BrokerCrashSchedule: the counter-based fail-stop crash–recover process.
#include "net/broker_lifecycle.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dcrd {
namespace {

TEST(BrokerCrashScheduleTest, DefaultAndZeroMtbfAreDisabled) {
  const BrokerCrashSchedule none;
  EXPECT_FALSE(none.enabled());
  const BrokerCrashSchedule zero(42, SimDuration::Zero(),
                                 SimDuration::Seconds(5));
  EXPECT_FALSE(zero.enabled());
  for (std::uint32_t n = 0; n < 8; ++n) {
    for (std::int64_t s = 0; s < 100; s += 7) {
      const SimTime t = SimTime::FromMicros(s * 1'000'000);
      EXPECT_TRUE(none.Up(NodeId(n), t));
      EXPECT_TRUE(zero.Up(NodeId(n), t));
    }
    EXPECT_TRUE(none.UpThroughout(NodeId(n), SimTime(),
                                  SimTime::FromMicros(3'600'000'000)));
    EXPECT_FALSE(zero.DownDuring(NodeId(n), SimTime(),
                                 SimTime::FromMicros(3'600'000'000)));
  }
}

TEST(BrokerCrashScheduleTest, StationaryDownFractionIsMttrOverMtbfPlusMttr) {
  const BrokerCrashSchedule schedule(7, SimDuration::Seconds(60),
                                     SimDuration::Seconds(5));
  ASSERT_TRUE(schedule.enabled());
  const double expected = 5.0 / 65.0;
  EXPECT_DOUBLE_EQ(schedule.down_fraction(), expected);
  std::uint64_t down = 0, total = 0;
  for (std::uint32_t node = 0; node < 100; ++node) {
    for (std::int64_t epoch = 0; epoch < 1000; ++epoch) {
      const SimTime t = SimTime::FromMicros(epoch * 1'000'000);
      down += schedule.Up(NodeId(node), t) ? 0 : 1;
      ++total;
    }
  }
  const double observed = static_cast<double>(down) /
                          static_cast<double>(total);
  EXPECT_NEAR(observed, expected, 0.01);
}

TEST(BrokerCrashScheduleTest, OutagesLastAtLeastMttrEpochs) {
  // MTTR 5s at a 1s epoch: every maximal down run spans >= 5 epochs
  // (overlapping starts can extend a run, never shorten it). The trailing
  // run is skipped — the scan end clips it, not the schedule.
  const BrokerCrashSchedule schedule(11, SimDuration::Seconds(30),
                                     SimDuration::Seconds(5));
  for (std::uint32_t node = 0; node < 20; ++node) {
    int run = 0;
    for (std::int64_t epoch = 0; epoch < 2000; ++epoch) {
      const SimTime t = SimTime::FromMicros(epoch * 1'000'000);
      if (!schedule.Up(NodeId(node), t)) {
        ++run;
      } else {
        if (run > 0) EXPECT_GE(run, 5) << "node " << node << " epoch " << epoch;
        run = 0;
      }
    }
  }
}

TEST(BrokerCrashScheduleTest, WindowQueriesMatchPerEpochSampling) {
  const BrokerCrashSchedule schedule(3, SimDuration::Seconds(20),
                                     SimDuration::Seconds(3));
  const NodeId node(4);
  for (std::int64_t start = 0; start < 200; start += 5) {
    const SimTime t0 = SimTime::FromMicros(start * 1'000'000 + 250'000);
    const SimTime t1 = SimTime::FromMicros((start + 7) * 1'000'000 + 750'000);
    bool all_up = true;
    for (std::int64_t epoch = start; epoch <= start + 7; ++epoch) {
      all_up = all_up &&
               schedule.Up(node, SimTime::FromMicros(epoch * 1'000'000 +
                                                     500'000));
    }
    EXPECT_EQ(schedule.UpThroughout(node, t0, t1), all_up);
    EXPECT_EQ(schedule.DownDuring(node, t0, t1), !all_up);
  }
}

TEST(BrokerCrashScheduleTest, DeterministicPerSeedAndDivergentAcrossSeeds) {
  const BrokerCrashSchedule a(99, SimDuration::Seconds(40),
                              SimDuration::Seconds(4));
  const BrokerCrashSchedule b(99, SimDuration::Seconds(40),
                              SimDuration::Seconds(4));
  const BrokerCrashSchedule c(100, SimDuration::Seconds(40),
                              SimDuration::Seconds(4));
  bool diverged = false;
  for (std::uint32_t node = 0; node < 10; ++node) {
    for (std::int64_t epoch = 0; epoch < 500; ++epoch) {
      const SimTime t = SimTime::FromMicros(epoch * 1'000'000);
      ASSERT_EQ(a.Up(NodeId(node), t), b.Up(NodeId(node), t));
      diverged = diverged || (a.Up(NodeId(node), t) != c.Up(NodeId(node), t));
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace dcrd
