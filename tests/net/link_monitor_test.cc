#include "net/link_monitor.h"

#include <gtest/gtest.h>

#include "graph/topology.h"

namespace dcrd {
namespace {

TEST(LinkMonitorTest, AlphaReportsTrueDelay) {
  Rng rng(1);
  const Graph graph = FullMesh(6, rng);
  const FailureSchedule failures(2, 0.0);
  LinkMonitor monitor(graph, failures, LinkMonitorConfig{}, Rng(3));
  monitor.MeasureAt(SimTime::Zero());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const LinkId link(static_cast<LinkId::underlying_type>(e));
    EXPECT_EQ(monitor.view().alpha(link), graph.edge(link).delay);
  }
}

TEST(LinkMonitorTest, PerfectNetworkYieldsGammaOne) {
  Rng rng(1);
  const Graph graph = FullMesh(6, rng);
  const FailureSchedule failures(2, 0.0);
  LinkMonitor monitor(graph, failures, LinkMonitorConfig{}, Rng(3));
  monitor.MeasureAt(SimTime::Zero());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(
        monitor.view().gamma(LinkId(static_cast<LinkId::underlying_type>(e))),
        1.0);
  }
}

TEST(LinkMonitorTest, GammaTracksFailureRate) {
  Rng rng(1);
  const Graph graph = FullMesh(10, rng);
  const FailureSchedule failures(7, 0.2);
  LinkMonitorConfig config;
  config.probe_count = 200;  // tight estimate for the assertion
  LinkMonitor monitor(graph, failures, config, Rng(3));
  // Several epochs of EWMA smoothing.
  for (int epoch = 0; epoch <= 5; ++epoch) {
    monitor.MeasureAt(SimTime::Zero() + SimDuration::Seconds(300) * epoch);
  }
  double total = 0;
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    total += monitor.view().gamma(
        LinkId(static_cast<LinkId::underlying_type>(e)));
  }
  EXPECT_NEAR(total / graph.edge_count(), 0.8, 0.03);
}

TEST(LinkMonitorTest, GammaIncludesLossRate) {
  Rng rng(1);
  const Graph graph = FullMesh(10, rng);
  const FailureSchedule failures(7, 0.0);
  LinkMonitorConfig config;
  config.probe_count = 200;
  config.loss_rate = 0.3;
  LinkMonitor monitor(graph, failures, config, Rng(3));
  for (int epoch = 0; epoch <= 5; ++epoch) {
    monitor.MeasureAt(SimTime::Zero() + SimDuration::Seconds(300) * epoch);
  }
  double total = 0;
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    total += monitor.view().gamma(
        LinkId(static_cast<LinkId::underlying_type>(e)));
  }
  EXPECT_NEAR(total / graph.edge_count(), 0.7, 0.03);
}

TEST(LinkMonitorTest, GammaNeverZero) {
  Rng rng(1);
  const Graph graph = FullMesh(5, rng);
  const FailureSchedule failures(7, 1.0);  // everything always down
  LinkMonitor monitor(graph, failures, LinkMonitorConfig{}, Rng(3));
  monitor.MeasureAt(SimTime::Zero());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    EXPECT_GT(monitor.view().gamma(
                  LinkId(static_cast<LinkId::underlying_type>(e))),
              0.0);
  }
}

TEST(LinkMonitorTest, EwmaSmoothsTowardNewSample) {
  Rng rng(1);
  const Graph graph = FullMesh(5, rng);
  const FailureSchedule failures(7, 1.0);
  LinkMonitorConfig config;
  config.ewma_weight = 0.5;
  LinkMonitor monitor(graph, failures, config, Rng(3));
  monitor.MeasureAt(SimTime::Zero());
  // First sample: gamma = 0.5*0 + 0.5*1 (bootstrap state 1.0) = 0.5.
  const LinkId link(0);
  EXPECT_NEAR(monitor.view().gamma(link), 0.5, 1e-9);
  monitor.MeasureAt(SimTime::Zero() + SimDuration::Seconds(300));
  EXPECT_NEAR(monitor.view().gamma(link), 0.25, 1e-9);
}

TEST(LinkMonitorTest, DeterministicForSeed) {
  Rng rng(1);
  const Graph graph = FullMesh(8, rng);
  const FailureSchedule failures(7, 0.1);
  LinkMonitor a(graph, failures, LinkMonitorConfig{}, Rng(9));
  LinkMonitor b(graph, failures, LinkMonitorConfig{}, Rng(9));
  a.MeasureAt(SimTime::Zero());
  b.MeasureAt(SimTime::Zero());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const LinkId link(static_cast<LinkId::underlying_type>(e));
    EXPECT_DOUBLE_EQ(a.view().gamma(link), b.view().gamma(link));
  }
}

}  // namespace
}  // namespace dcrd
