#include "net/overlay_network.h"

#include <gtest/gtest.h>

#include "graph/topology.h"

namespace dcrd {
namespace {

struct Fixture {
  Graph graph = Line(3, SimDuration::Millis(10));
  Scheduler scheduler;
};

TEST(OverlayNetworkTest, DeliversAfterLinkDelay) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1));
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  SimTime arrival;
  bool delivered = false;
  network.Transmit(NodeId(0), link, TrafficClass::kData, [&] {
    delivered = true;
    arrival = f.scheduler.now();
  });
  f.scheduler.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(arrival, SimTime::Zero() + SimDuration::Millis(10));
}

TEST(OverlayNetworkTest, DropsOnFailedLink) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 1.0), 0.0,
                         Rng(1));
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  bool delivered = false;
  network.Transmit(NodeId(0), link, TrafficClass::kData,
                   [&] { delivered = true; });
  f.scheduler.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(network.counters(TrafficClass::kData).dropped_failure, 1U);
  EXPECT_EQ(network.counters(TrafficClass::kData).delivered, 0U);
}

TEST(OverlayNetworkTest, LossRateOneDropsEverything) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 1.0,
                         Rng(1));
  const LinkId link = *f.graph.FindEdge(NodeId(1), NodeId(2));
  bool delivered = false;
  network.Transmit(NodeId(1), link, TrafficClass::kData,
                   [&] { delivered = true; });
  f.scheduler.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(network.counters(TrafficClass::kData).dropped_loss, 1U);
}

TEST(OverlayNetworkTest, EmpiricalLossRate) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.1,
                         Rng(5));
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  int delivered = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    network.Transmit(NodeId(0), link, TrafficClass::kData,
                     [&] { ++delivered; });
  }
  f.scheduler.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.9, 0.01);
  EXPECT_EQ(network.counters(TrafficClass::kData).attempted,
            static_cast<std::uint64_t>(n));
}

TEST(OverlayNetworkTest, CountersSplitByTrafficClass) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1));
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  network.Transmit(NodeId(0), link, TrafficClass::kData, [] {});
  network.Transmit(NodeId(1), link, TrafficClass::kAck, [] {});
  network.Transmit(NodeId(1), link, TrafficClass::kAck, [] {});
  f.scheduler.Run();
  EXPECT_EQ(network.counters(TrafficClass::kData).attempted, 1U);
  EXPECT_EQ(network.counters(TrafficClass::kAck).attempted, 2U);
  EXPECT_EQ(network.counters(TrafficClass::kControl).attempted, 0U);
}

TEST(OverlayNetworkTest, FailureAppliesAtEntryInstant) {
  // Link down only during second 1; a transmission at t=0 passes, at t=1.5s
  // drops, at t=2.2s passes again.
  Fixture f;
  // Find a seed where link 0's epoch pattern is up,down,up over the first
  // three seconds.
  std::uint64_t seed = 0;
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  for (; seed < 10'000; ++seed) {
    const FailureSchedule schedule(seed, 0.5);
    if (schedule.IsUp(link, SimTime::Zero()) &&
        !schedule.IsUp(link, SimTime::FromMicros(1'500'000)) &&
        schedule.IsUp(link, SimTime::FromMicros(2'200'000))) {
      break;
    }
  }
  ASSERT_LT(seed, 10'000U);
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(seed, 0.5),
                         0.0, Rng(1));
  int delivered = 0;
  network.Transmit(NodeId(0), link, TrafficClass::kData, [&] { ++delivered; });
  f.scheduler.ScheduleAt(SimTime::FromMicros(1'500'000), [&] {
    network.Transmit(NodeId(0), link, TrafficClass::kData,
                     [&] { ++delivered; });
  });
  f.scheduler.ScheduleAt(SimTime::FromMicros(2'200'000), [&] {
    network.Transmit(NodeId(0), link, TrafficClass::kData,
                     [&] { ++delivered; });
  });
  f.scheduler.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(OverlayNetworkDeathTest, RejectsNonEndpointSender) {
  Fixture f;
  OverlayNetwork network(f.graph, f.scheduler, FailureSchedule(1, 0.0), 0.0,
                         Rng(1));
  const LinkId link = *f.graph.FindEdge(NodeId(0), NodeId(1));
  EXPECT_DEATH(network.Transmit(NodeId(2), link, TrafficClass::kData, [] {}),
               "not an endpoint");
}

}  // namespace
}  // namespace dcrd
