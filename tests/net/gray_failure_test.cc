#include "net/gray_failure.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

GrayFailureConfig Config(double probability, double asymmetry = 0.5) {
  GrayFailureConfig config;
  config.probability = probability;
  config.asymmetry = asymmetry;
  return config;
}

TEST(GrayFailureTest, DefaultConstructedNeverDegrades) {
  const GrayFailureSchedule schedule;
  EXPECT_FALSE(schedule.enabled());
  for (int link = 0; link < 10; ++link) {
    for (int s = 0; s < 50; ++s) {
      const SimTime t = SimTime::FromMicros(s * 999'937);
      EXPECT_FALSE(schedule.Active(LinkId(link), t));
      EXPECT_DOUBLE_EQ(
          schedule.ExtraLoss(LinkId(link), LinkDirection::kAToB, t), 0.0);
      EXPECT_DOUBLE_EQ(
          schedule.DelayFactor(LinkId(link), LinkDirection::kBToA, t), 1.0);
    }
  }
}

TEST(GrayFailureTest, ZeroProbabilityNeverDegrades) {
  const GrayFailureSchedule schedule(99, Config(0.0));
  EXPECT_FALSE(schedule.enabled());
  EXPECT_FALSE(schedule.Active(LinkId(3), SimTime::FromMicros(5'500'000)));
}

TEST(GrayFailureTest, ProbabilityOneAlwaysGray) {
  const GrayFailureSchedule schedule(1, Config(1.0, /*asymmetry=*/0.0));
  for (int link = 0; link < 10; ++link) {
    const SimTime t = SimTime::FromMicros(link * 777'000);
    EXPECT_TRUE(schedule.Active(LinkId(link), t));
    // Symmetric episodes degrade both directions.
    EXPECT_TRUE(schedule.Degraded(LinkId(link), LinkDirection::kAToB, t));
    EXPECT_TRUE(schedule.Degraded(LinkId(link), LinkDirection::kBToA, t));
  }
}

TEST(GrayFailureTest, ConstantWithinEpoch) {
  const GrayFailureSchedule schedule(42, Config(0.5));
  for (int link = 0; link < 50; ++link) {
    for (const LinkDirection dir :
         {LinkDirection::kAToB, LinkDirection::kBToA}) {
      const bool at_start =
          schedule.Degraded(LinkId(link), dir, SimTime::FromMicros(3'000'000));
      EXPECT_EQ(schedule.Degraded(LinkId(link), dir,
                                  SimTime::FromMicros(3'500'000)),
                at_start);
      EXPECT_EQ(schedule.Degraded(LinkId(link), dir,
                                  SimTime::FromMicros(3'999'999)),
                at_start);
    }
  }
}

TEST(GrayFailureTest, DeterministicAcrossInstances) {
  const GrayFailureSchedule a(7, Config(0.3));
  const GrayFailureSchedule b(7, Config(0.3));
  for (int link = 0; link < 20; ++link) {
    for (int s = 0; s < 50; ++s) {
      const SimTime t = SimTime::FromMicros(s * 1'000'000);
      EXPECT_EQ(a.Degraded(LinkId(link), LinkDirection::kAToB, t),
                b.Degraded(LinkId(link), LinkDirection::kAToB, t));
      EXPECT_EQ(a.Degraded(LinkId(link), LinkDirection::kBToA, t),
                b.Degraded(LinkId(link), LinkDirection::kBToA, t));
    }
  }
}

TEST(GrayFailureTest, SeedChangesSamplePath) {
  const GrayFailureSchedule a(7, Config(0.5));
  const GrayFailureSchedule b(8, Config(0.5));
  int differences = 0;
  for (int link = 0; link < 20; ++link) {
    for (int s = 0; s < 50; ++s) {
      const SimTime t = SimTime::FromMicros(s * 1'000'000);
      differences +=
          a.Active(LinkId(link), t) != b.Active(LinkId(link), t) ? 1 : 0;
    }
  }
  EXPECT_GT(differences, 100);  // ~500 draws at P=0.5
}

TEST(GrayFailureTest, EmpiricalEpisodeRateMatchesProbability) {
  const GrayFailureSchedule schedule(11, Config(0.1));
  int active = 0;
  const int samples = 100'000;
  for (int i = 0; i < samples; ++i) {
    if (schedule.Active(LinkId(i % 97), SimTime::FromMicros(
            (i / 97) * 1'000'000))) {
      ++active;
    }
  }
  const double rate = static_cast<double>(active) / samples;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(GrayFailureTest, AsymmetryProducesOneSidedEpisodes) {
  // Always gray; episodes one-sided with probability 1 — exactly one
  // direction degraded, chosen by fair coin, so both sides must appear.
  const GrayFailureSchedule schedule(5, Config(1.0, /*asymmetry=*/1.0));
  int a_to_b_only = 0, b_to_a_only = 0;
  for (int link = 0; link < 200; ++link) {
    const SimTime t = SimTime::Zero();
    const bool ab = schedule.Degraded(LinkId(link), LinkDirection::kAToB, t);
    const bool ba = schedule.Degraded(LinkId(link), LinkDirection::kBToA, t);
    EXPECT_NE(ab, ba);  // exactly one direction
    a_to_b_only += ab && !ba ? 1 : 0;
    b_to_a_only += ba && !ab ? 1 : 0;
  }
  EXPECT_GT(a_to_b_only, 50);
  EXPECT_GT(b_to_a_only, 50);
}

TEST(GrayFailureTest, ExtraLossAndDelayFollowDegradation) {
  GrayFailureConfig config = Config(1.0, /*asymmetry=*/1.0);
  config.extra_loss = 0.4;
  config.delay_factor = 5.0;
  const GrayFailureSchedule schedule(5, config);
  const SimTime t = SimTime::Zero();
  for (int link = 0; link < 50; ++link) {
    for (const LinkDirection dir :
         {LinkDirection::kAToB, LinkDirection::kBToA}) {
      if (schedule.Degraded(LinkId(link), dir, t)) {
        EXPECT_DOUBLE_EQ(schedule.ExtraLoss(LinkId(link), dir, t), 0.4);
        EXPECT_DOUBLE_EQ(schedule.DelayFactor(LinkId(link), dir, t), 5.0);
      } else {
        EXPECT_DOUBLE_EQ(schedule.ExtraLoss(LinkId(link), dir, t), 0.0);
        EXPECT_DOUBLE_EQ(schedule.DelayFactor(LinkId(link), dir, t), 1.0);
      }
    }
  }
}

TEST(GrayFailureTest, OppositeFlipsDirection) {
  EXPECT_EQ(Opposite(LinkDirection::kAToB), LinkDirection::kBToA);
  EXPECT_EQ(Opposite(LinkDirection::kBToA), LinkDirection::kAToB);
}

}  // namespace
}  // namespace dcrd
