// Per-link heterogeneous failure probabilities and propagation jitter.
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "net/failure_schedule.h"
#include "net/overlay_network.h"

namespace dcrd {
namespace {

TEST(HeterogeneityTest, ZeroSpreadIsUniform) {
  Rng rng(1);
  const auto fractions = DrawHeterogeneousFractions(50, 0.06, 0.0, rng);
  for (const double f : fractions) EXPECT_DOUBLE_EQ(f, 0.06);
}

TEST(HeterogeneityTest, SpreadProducesVariedFractionsAroundMean) {
  Rng rng(2);
  const auto fractions = DrawHeterogeneousFractions(5000, 0.06, 1.5, rng);
  double min = 1.0, max = 0.0, sum = 0.0;
  for (const double f : fractions) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 0.9);
    min = std::min(min, f);
    max = std::max(max, f);
    sum += f;
  }
  EXPECT_LT(min, 0.02);   // exp(-1.5) * 0.06 ~ 0.013
  EXPECT_GT(max, 0.2);    // exp(+1.5) * 0.06 ~ 0.27
  // Log-uniform mean: Pf * (e^h - e^-h) / 2h ~ 0.085 at h = 1.5.
  EXPECT_NEAR(sum / fractions.size(), 0.085, 0.01);
}

TEST(HeterogeneityTest, ZeroMeanStaysZero) {
  Rng rng(3);
  const auto fractions = DrawHeterogeneousFractions(10, 0.0, 2.0, rng);
  for (const double f : fractions) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(HeterogeneityTest, PerLinkEmpiricalRatesMatchFractions) {
  const std::vector<double> fractions = {0.02, 0.3, 0.0, 0.6};
  const FailureSchedule schedule(9, fractions);
  for (std::size_t l = 0; l < fractions.size(); ++l) {
    const LinkId link(static_cast<LinkId::underlying_type>(l));
    EXPECT_DOUBLE_EQ(schedule.DownFraction(link), fractions[l]);
    int down = 0;
    const int samples = 50'000;
    for (int s = 0; s < samples; ++s) {
      down += schedule.IsUp(link, SimTime::FromMicros(s * 1'000'000LL)) ? 0 : 1;
    }
    EXPECT_NEAR(static_cast<double>(down) / samples, fractions[l], 0.01)
        << "link " << l;
  }
}

TEST(HeterogeneityTest, MeanFractionReported) {
  const FailureSchedule schedule(9, std::vector<double>{0.1, 0.3});
  EXPECT_DOUBLE_EQ(schedule.failure_probability(), 0.2);
}

TEST(HeterogeneityTest, HeterogeneousWithLongOutages) {
  // Outage-length semantics must hold per link at its own rate.
  const std::vector<double> fractions = {0.25};
  const FailureSchedule schedule(4, fractions, SimDuration::Seconds(1), 5);
  const LinkId link(0);
  int down = 0, consecutive = 0;
  const int samples = 100'000;
  for (int s = 5; s < samples; ++s) {
    const bool up = schedule.IsUp(link, SimTime::FromMicros(s * 1'000'000LL));
    down += up ? 0 : 1;
    if (!up) {
      ++consecutive;
    } else {
      if (consecutive > 0) {
        EXPECT_GE(consecutive, 5);
      }
      consecutive = 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(down) / (samples - 5), 0.25, 0.015);
}

TEST(JitterTest, ArrivalsSpreadAroundBaseDelay) {
  const Graph graph = Line(2, SimDuration::Millis(20));
  Scheduler scheduler;
  OverlayNetworkConfig config;
  config.delay_jitter = 0.25;
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0), config,
                         Rng(11));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  std::vector<double> arrival_ms;
  for (int i = 0; i < 2000; ++i) {
    network.Transmit(NodeId(0), link, TrafficClass::kData,
                     [&] { arrival_ms.push_back(scheduler.now().micros() / 1e3); });
  }
  scheduler.Run();
  ASSERT_EQ(arrival_ms.size(), 2000U);
  double min = 1e9, max = 0, sum = 0;
  for (const double a : arrival_ms) {
    min = std::min(min, a);
    max = std::max(max, a);
    sum += a;
  }
  EXPECT_GE(min, 15.0 - 1e-6);  // 20ms * 0.75
  EXPECT_LE(max, 25.0 + 1e-6);  // 20ms * 1.25
  EXPECT_LT(min, 16.0);         // jitter actually exercises the range
  EXPECT_GT(max, 24.0);
  EXPECT_NEAR(sum / arrival_ms.size(), 20.0, 0.2);
}

TEST(JitterTest, ZeroJitterIsExact) {
  const Graph graph = Line(2, SimDuration::Millis(20));
  Scheduler scheduler;
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0),
                         OverlayNetworkConfig{}, Rng(11));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  SimTime arrival;
  network.Transmit(NodeId(0), link, TrafficClass::kData,
                   [&] { arrival = scheduler.now(); });
  scheduler.Run();
  EXPECT_EQ(arrival, SimTime::Zero() + SimDuration::Millis(20));
}

}  // namespace
}  // namespace dcrd
