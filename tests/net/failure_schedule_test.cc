#include "net/failure_schedule.h"

#include <gtest/gtest.h>

namespace dcrd {
namespace {

TEST(FailureScheduleTest, ZeroProbabilityAlwaysUp) {
  const FailureSchedule schedule(1, 0.0);
  for (int link = 0; link < 10; ++link) {
    for (int s = 0; s < 100; ++s) {
      EXPECT_TRUE(schedule.IsUp(LinkId(link), SimTime::FromMicros(s * 999'937)));
    }
  }
}

TEST(FailureScheduleTest, ProbabilityOneAlwaysDown) {
  const FailureSchedule schedule(1, 1.0);
  EXPECT_FALSE(schedule.IsUp(LinkId(0), SimTime::Zero()));
  EXPECT_FALSE(schedule.IsUp(LinkId(7), SimTime::FromMicros(5'500'000)));
}

TEST(FailureScheduleTest, ConstantWithinEpoch) {
  const FailureSchedule schedule(42, 0.5);
  for (int link = 0; link < 50; ++link) {
    const bool at_start =
        schedule.IsUp(LinkId(link), SimTime::FromMicros(3'000'000));
    EXPECT_EQ(schedule.IsUp(LinkId(link), SimTime::FromMicros(3'500'000)),
              at_start);
    EXPECT_EQ(schedule.IsUp(LinkId(link), SimTime::FromMicros(3'999'999)),
              at_start);
  }
}

TEST(FailureScheduleTest, RedrawsAcrossEpochs) {
  const FailureSchedule schedule(42, 0.5);
  int changes = 0;
  for (int s = 0; s + 1 < 200; ++s) {
    const bool now = schedule.IsUp(LinkId(3), SimTime::FromMicros(s * 1'000'000));
    const bool next =
        schedule.IsUp(LinkId(3), SimTime::FromMicros((s + 1) * 1'000'000));
    changes += now != next ? 1 : 0;
  }
  EXPECT_GT(changes, 50);  // ~100 expected at Pf=0.5
}

TEST(FailureScheduleTest, EmpiricalRateMatchesPf) {
  const FailureSchedule schedule(7, 0.06);
  int down = 0;
  const int samples = 100'000;
  for (int i = 0; i < samples; ++i) {
    const LinkId link(static_cast<LinkId::underlying_type>(i % 100));
    const SimTime t = SimTime::FromMicros((i / 100) * 1'000'000);
    down += schedule.IsUp(link, t) ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(down) / samples, 0.06, 0.005);
}

TEST(FailureScheduleTest, DeterministicAcrossInstances) {
  const FailureSchedule a(99, 0.3);
  const FailureSchedule b(99, 0.3);
  for (int i = 0; i < 1000; ++i) {
    const LinkId link(static_cast<LinkId::underlying_type>(i % 17));
    const SimTime t = SimTime::FromMicros(i * 333'333);
    EXPECT_EQ(a.IsUp(link, t), b.IsUp(link, t));
  }
}

TEST(FailureScheduleTest, SeedChangesSamplePath) {
  const FailureSchedule a(1, 0.3);
  const FailureSchedule b(2, 0.3);
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    const LinkId link(static_cast<LinkId::underlying_type>(i % 17));
    const SimTime t = SimTime::FromMicros(i * 1'000'000);
    diffs += a.IsUp(link, t) != b.IsUp(link, t) ? 1 : 0;
  }
  EXPECT_GT(diffs, 100);
}

TEST(FailureScheduleTest, LinksIndependent) {
  const FailureSchedule schedule(5, 0.5);
  int diffs = 0;
  for (int s = 0; s < 1000; ++s) {
    const SimTime t = SimTime::FromMicros(s * 1'000'000);
    diffs += schedule.IsUp(LinkId(0), t) != schedule.IsUp(LinkId(1), t) ? 1 : 0;
  }
  EXPECT_GT(diffs, 300);
}

TEST(FailureScheduleTest, CustomEpochLength) {
  const FailureSchedule schedule(11, 0.5, SimDuration::Seconds(10));
  for (int link = 0; link < 20; ++link) {
    const bool at_zero = schedule.IsUp(LinkId(link), SimTime::Zero());
    EXPECT_EQ(schedule.IsUp(LinkId(link), SimTime::FromMicros(9'999'999)),
              at_zero);
  }
}

TEST(FailureScheduleTest, FutureQueriesWork) {
  // The ORACLE plans with entry times beyond the current clock; the
  // schedule must answer any horizon deterministically.
  const FailureSchedule schedule(3, 0.1);
  const SimTime far = SimTime::FromMicros(123'456'789'000LL);
  EXPECT_EQ(schedule.IsUp(LinkId(4), far), schedule.IsUp(LinkId(4), far));
}

}  // namespace
}  // namespace dcrd
