// Tests for the extended failure machinery: multi-epoch link outages and
// broker-node failures.
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "net/failure_schedule.h"
#include "net/overlay_network.h"

namespace dcrd {
namespace {

TEST(OutageLengthTest, StationaryDownFractionIndependentOfLength) {
  // P(down) must equal Pf for any outage length L.
  for (const int length : {1, 2, 5, 10}) {
    const FailureSchedule schedule(5, 0.10, SimDuration::Seconds(1), length);
    int down = 0;
    const int samples = 200'000;
    for (int i = 0; i < samples; ++i) {
      const LinkId link(static_cast<LinkId::underlying_type>(i % 50));
      // Skip the first L epochs (edge-of-time clamp biases them up).
      const SimTime t =
          SimTime::FromMicros((length + i / 50) * 1'000'000LL);
      down += schedule.IsUp(link, t) ? 0 : 1;
    }
    EXPECT_NEAR(static_cast<double>(down) / samples, 0.10, 0.01)
        << "L=" << length;
  }
}

TEST(OutageLengthTest, OutagesLastAtLeastLEpochs) {
  // Every down->up transition must be preceded by >= L consecutive down
  // epochs.
  const int length = 4;
  const FailureSchedule schedule(9, 0.05, SimDuration::Seconds(1), length);
  const LinkId link(3);
  int consecutive_down = 0;
  int observed_outages = 0;
  for (int s = 0; s < 200'000; ++s) {
    const bool up = schedule.IsUp(link, SimTime::FromMicros(s * 1'000'000LL));
    if (!up) {
      ++consecutive_down;
    } else {
      if (consecutive_down > 0) {
        EXPECT_GE(consecutive_down, length);
        ++observed_outages;
      }
      consecutive_down = 0;
    }
  }
  EXPECT_GT(observed_outages, 100);  // the process actually fires
}

TEST(OutageLengthTest, LengthOneMatchesLegacyBehaviour) {
  const FailureSchedule a(7, 0.06, SimDuration::Seconds(1), 1);
  const FailureSchedule b(7, 0.06);
  for (int i = 0; i < 5000; ++i) {
    const LinkId link(static_cast<LinkId::underlying_type>(i % 20));
    const SimTime t = SimTime::FromMicros((i / 20) * 1'000'000LL);
    EXPECT_EQ(a.IsUp(link, t), b.IsUp(link, t));
  }
}

TEST(NodeFailureScheduleTest, DefaultNeverFails) {
  const NodeFailureSchedule schedule;
  for (int v = 0; v < 20; ++v) {
    EXPECT_TRUE(schedule.IsUp(NodeId(v), SimTime::FromMicros(v * 777'777)));
  }
}

TEST(NodeFailureScheduleTest, EmpiricalRate) {
  const NodeFailureSchedule schedule(11, 0.05);
  int down = 0;
  const int samples = 100'000;
  for (int i = 0; i < samples; ++i) {
    const NodeId node(static_cast<NodeId::underlying_type>(i % 20));
    const SimTime t = SimTime::FromMicros((i / 20) * 1'000'000LL);
    down += schedule.IsUp(node, t) ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(down) / samples, 0.05, 0.005);
}

TEST(NodeFailureTest, DownEndpointDropsTransmissions) {
  // Find a seed/time where node 1 is down but node 0 is up.
  std::uint64_t seed = 0;
  for (; seed < 10'000; ++seed) {
    const NodeFailureSchedule schedule(seed, 0.4);
    if (!schedule.IsUp(NodeId(1), SimTime::Zero()) &&
        schedule.IsUp(NodeId(0), SimTime::Zero())) {
      break;
    }
  }
  ASSERT_LT(seed, 10'000U);

  const Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0),
                         OverlayNetworkConfig{}, Rng(1),
                         NodeFailureSchedule(seed, 0.4));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  bool delivered = false;
  network.Transmit(NodeId(0), link, TrafficClass::kData,
                   [&] { delivered = true; });
  scheduler.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(network.counters(TrafficClass::kData).dropped_node_failure, 1U);
}

TEST(NodeFailureTest, NodeUpQueriesSchedule) {
  const Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0),
                         OverlayNetworkConfig{}, Rng(1),
                         NodeFailureSchedule(3, 1.0));
  EXPECT_FALSE(network.NodeUp(NodeId(0)));
}

TEST(QueuingTest, SerializationDelaysBursts) {
  // Two back-to-back packets on one link: the second waits for the first's
  // serialization slot.
  const Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  OverlayNetworkConfig config;
  config.serialization = SimDuration::Millis(4);
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0), config,
                         Rng(1));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 3; ++i) {
    network.Transmit(NodeId(0), link, TrafficClass::kData,
                     [&] { arrivals.push_back(scheduler.now()); });
  }
  scheduler.Run();
  ASSERT_EQ(arrivals.size(), 3U);
  EXPECT_EQ(arrivals[0], SimTime::Zero() + SimDuration::Millis(10));
  EXPECT_EQ(arrivals[1], SimTime::Zero() + SimDuration::Millis(14));
  EXPECT_EQ(arrivals[2], SimTime::Zero() + SimDuration::Millis(18));
}

TEST(QueuingTest, DirectionsQueueIndependently) {
  const Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  OverlayNetworkConfig config;
  config.serialization = SimDuration::Millis(4);
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0), config,
                         Rng(1));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  std::vector<SimTime> arrivals;
  network.Transmit(NodeId(0), link, TrafficClass::kData,
                   [&] { arrivals.push_back(scheduler.now()); });
  network.Transmit(NodeId(1), link, TrafficClass::kData,
                   [&] { arrivals.push_back(scheduler.now()); });
  scheduler.Run();
  ASSERT_EQ(arrivals.size(), 2U);
  // No cross-direction interference: both land after one propagation.
  EXPECT_EQ(arrivals[0], SimTime::Zero() + SimDuration::Millis(10));
  EXPECT_EQ(arrivals[1], SimTime::Zero() + SimDuration::Millis(10));
}

TEST(QueuingTest, AcksBypassTheQueue) {
  const Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  OverlayNetworkConfig config;
  config.serialization = SimDuration::Millis(50);
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0), config,
                         Rng(1));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  // Saturate the data direction, then send an ACK: it must not wait.
  network.Transmit(NodeId(0), link, TrafficClass::kData, [] {});
  network.Transmit(NodeId(0), link, TrafficClass::kData, [] {});
  SimTime ack_arrival = SimTime::Max();
  network.Transmit(NodeId(0), link, TrafficClass::kAck,
                   [&] { ack_arrival = scheduler.now(); });
  scheduler.Run();
  EXPECT_EQ(ack_arrival, SimTime::Zero());  // instant out-of-band ACK
}

TEST(QueuingTest, ZeroSerializationMeansNoQueue) {
  const Graph graph = Line(2, SimDuration::Millis(10));
  Scheduler scheduler;
  OverlayNetwork network(graph, scheduler, FailureSchedule(1, 0.0),
                         OverlayNetworkConfig{}, Rng(1));
  const LinkId link = *graph.FindEdge(NodeId(0), NodeId(1));
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 5; ++i) {
    network.Transmit(NodeId(0), link, TrafficClass::kData,
                     [&] { arrivals.push_back(scheduler.now()); });
  }
  scheduler.Run();
  for (const SimTime arrival : arrivals) {
    EXPECT_EQ(arrival, SimTime::Zero() + SimDuration::Millis(10));
  }
}

}  // namespace
}  // namespace dcrd
